//! Seedable random samplers used by the synthetic trace engine.
//!
//! The workspace deliberately avoids `rand_distr`; the handful of
//! distributions the generator needs (normal, log-normal, exponential,
//! gamma, Poisson, negative binomial, Pareto, Zipf, categorical) are
//! implemented here with standard textbook algorithms so the whole sampling
//! stack is auditable.
//!
//! All samplers take the RNG by `&mut impl Rng` so callers control seeding
//! and reproducibility.

use crate::{Result, StatsError};
use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 to keep ln finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, std²)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a negative `std`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> Result<f64> {
    if std < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "std",
            detail: format!("standard deviation must be nonnegative, got {std}"),
        });
    }
    Ok(mean + std * standard_normal(rng))
}

/// Draws from a log-normal with the given *log-space* location and scale.
///
/// The median of the resulting distribution is `exp(mu)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a negative `sigma`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> Result<f64> {
    Ok(normal(rng, mu, sigma)?.exp())
}

/// Draws from an exponential distribution with the given rate λ.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a nonpositive rate.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> Result<f64> {
    if rate <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "rate",
            detail: format!("rate must be positive, got {rate}"),
        });
    }
    let mut u: f64 = rng.gen();
    while u <= f64::MIN_POSITIVE {
        u = rng.gen();
    }
    Ok(-u.ln() / rate)
}

/// Draws from a gamma distribution with the given shape and scale
/// (Marsaglia–Tsang for shape ≥ 1, boost trick for shape < 1).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for nonpositive parameters.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> Result<f64> {
    if shape <= 0.0 || scale <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "shape/scale",
            detail: format!("gamma parameters must be positive, got shape={shape} scale={scale}"),
        });
    }
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        let g = gamma(rng, shape + 1.0, 1.0)?;
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        return Ok(g * u.powf(1.0 / shape) * scale);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return Ok(d * v * scale);
        }
    }
}

/// Draws a Poisson count with the given mean (Knuth for small means,
/// normal approximation with continuity correction for large ones).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a negative mean.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> Result<u64> {
    if mean < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "mean",
            detail: format!("mean must be nonnegative, got {mean}"),
        });
    }
    if mean == 0.0 {
        return Ok(0);
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return Ok(k);
            }
            k += 1;
        }
    }
    // Normal approximation, adequate for the generator's large-rate days.
    let draw = mean + mean.sqrt() * standard_normal(rng);
    Ok(draw.round().max(0.0) as u64)
}

/// Draws a negative-binomial count via the Poisson–gamma mixture.
///
/// `mean` is the expected count; `dispersion` (often written *r*) controls
/// overdispersion: variance = mean + mean²/dispersion. Small `dispersion`
/// gives a burstier series — exactly the knob the trace generator uses to
/// hit Table I's per-family coefficient of variation.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for nonpositive parameters.
pub fn negative_binomial<R: Rng + ?Sized>(rng: &mut R, mean: f64, dispersion: f64) -> Result<u64> {
    if mean < 0.0 || dispersion <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "mean/dispersion",
            detail: format!("need mean >= 0 and dispersion > 0, got {mean}, {dispersion}"),
        });
    }
    if mean == 0.0 {
        return Ok(0);
    }
    let lambda = gamma(rng, dispersion, mean / dispersion)?;
    poisson(rng, lambda)
}

/// Draws from a (type-I) Pareto distribution with the given minimum and
/// tail index α. Heavy-tailed attack durations use this.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for nonpositive parameters.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> Result<f64> {
    if x_min <= 0.0 || alpha <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x_min/alpha",
            detail: format!("pareto parameters must be positive, got {x_min}, {alpha}"),
        });
    }
    let mut u: f64 = rng.gen();
    while u <= f64::MIN_POSITIVE {
        u = rng.gen();
    }
    Ok(x_min / u.powf(1.0 / alpha))
}

/// A precomputed Zipf sampler over ranks `1..=n` with exponent `s`.
///
/// Bot-to-AS assignment and target popularity both follow Zipf-like laws in
/// measured botnets; the trace generator uses this for both.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                detail: "support size must be nonzero".to_string(),
            });
        }
        if s < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "s",
                detail: format!("exponent must be nonnegative, got {s}"),
            });
        }
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Draws a rank in `0..n` (0-based; rank 0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Size of the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A categorical sampler over arbitrary nonnegative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds the sampler from weights (need not be normalized).
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] for an empty weight list.
    /// * [`StatsError::InvalidParameter`] for negative weights or an
    ///   all-zero weight vector.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                detail: "weights must be finite and nonnegative".to_string(),
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                detail: "weights must not all be zero".to_string(),
            });
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Categorical { cdf })
    }

    /// Draws an index in `0..weights.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether there are zero categories (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A 24-slot diurnal intensity profile: multiplicative hour-of-day factors
/// that average to 1, modeling botmasters' launch-time preferences (§III-B:
/// timestamps decompose into day and hour because launch times follow
/// bot-activity cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    factors: [f64; 24],
}

impl DiurnalProfile {
    /// Uniform profile: every hour equally likely.
    pub fn flat() -> Self {
        DiurnalProfile { factors: [1.0; 24] }
    }

    /// A sinusoidal profile peaking at `peak_hour` with the given relative
    /// `amplitude ∈ [0, 1)`; factor(h) = 1 + amplitude·cos(2π(h−peak)/24).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `peak_hour >= 24` or
    /// amplitude is outside `[0, 1)`.
    pub fn sinusoidal(peak_hour: u8, amplitude: f64) -> Result<Self> {
        if peak_hour >= 24 {
            return Err(StatsError::InvalidParameter {
                name: "peak_hour",
                detail: format!("hour must be < 24, got {peak_hour}"),
            });
        }
        if !(0.0..1.0).contains(&amplitude) {
            return Err(StatsError::InvalidParameter {
                name: "amplitude",
                detail: format!("amplitude must lie in [0, 1), got {amplitude}"),
            });
        }
        let mut factors = [0.0; 24];
        for (h, f) in factors.iter_mut().enumerate() {
            let phase = std::f64::consts::TAU * (h as f64 - peak_hour as f64) / 24.0;
            *f = 1.0 + amplitude * phase.cos();
        }
        Ok(DiurnalProfile { factors })
    }

    /// The multiplicative factor for the given hour.
    ///
    /// # Panics
    ///
    /// Panics when `hour >= 24`.
    pub fn factor(&self, hour: u8) -> f64 {
        assert!(hour < 24, "hour {hour} out of range");
        self.factors[hour as usize]
    }

    /// Draws an hour of day with probability proportional to the factors.
    pub fn sample_hour<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        let cat = Categorical::new(&self.factors).expect("factors are positive by construction");
        cat.sample(rng) as u8
    }

    /// All 24 factors.
    pub fn factors(&self) -> &[f64; 24] {
        &self.factors
    }
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile::flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 10.0, 2.0).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!(normal(&mut r, 0.0, -1.0).is_err());
    }

    #[test]
    fn log_normal_is_positive_with_right_median() {
        let mut r = rng();
        let mut samples: Vec<f64> =
            (0..20_001).map(|_| log_normal(&mut r, 2.0, 0.5).unwrap()).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.5, "median {median}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(exponential(&mut r, 0.0).is_err());
    }

    #[test]
    fn gamma_mean_and_positivity() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| gamma(&mut r, 3.0, 2.0).unwrap()).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn gamma_small_shape() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| gamma(&mut r, 0.5, 1.0).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(gamma(&mut r, -1.0, 1.0).is_err());
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let samples: Vec<u64> = (0..20_000).map(|_| poisson(&mut r, 3.0).unwrap()).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let samples: Vec<u64> = (0..10_000).map(|_| poisson(&mut r, 144.0).unwrap()).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 144.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0).unwrap(), 0);
        assert!(poisson(&mut r, -1.0).is_err());
    }

    #[test]
    fn negative_binomial_is_overdispersed() {
        let mut r = rng();
        let samples: Vec<f64> =
            (0..20_000).map(|_| negative_binomial(&mut r, 10.0, 2.0).unwrap() as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
        // variance = mean + mean²/r = 10 + 50 = 60
        assert!(var > 40.0 && var < 80.0, "var {var}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5_000).map(|_| pareto(&mut r, 30.0, 1.5).unwrap()).collect();
        assert!(samples.iter().all(|&x| x >= 30.0));
        assert!(pareto(&mut r, 0.0, 1.0).is_err());
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut r = rng();
        let z = Zipf::new(50, 1.2).unwrap();
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 {} vs rank 10 {}", counts[0], counts[10]);
        assert!(counts[0] > counts[49] * 3);
        assert_eq!(z.len(), 50);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_s_zero_is_uniformish() {
        let mut r = rng();
        let z = Zipf::new(4, 0.0).unwrap();
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(3, -0.5).is_err());
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[c.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!((counts[2] as f64 / counts[0] as f64 - 3.0).abs() < 0.3);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn diurnal_flat_averages_one() {
        let p = DiurnalProfile::flat();
        let avg: f64 = p.factors().iter().sum::<f64>() / 24.0;
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_sinusoidal_peaks_at_peak() {
        let p = DiurnalProfile::sinusoidal(14, 0.6).unwrap();
        let peak = p.factor(14);
        for h in 0..24 {
            assert!(p.factor(h) <= peak + 1e-12);
        }
        let avg: f64 = p.factors().iter().sum::<f64>() / 24.0;
        assert!((avg - 1.0).abs() < 1e-9, "profile mean {avg}");
    }

    #[test]
    fn diurnal_sample_hour_prefers_peak() {
        let mut r = rng();
        let p = DiurnalProfile::sinusoidal(12, 0.9).unwrap();
        let mut counts = [0usize; 24];
        for _ in 0..50_000 {
            counts[p.sample_hour(&mut r) as usize] += 1;
        }
        assert!(counts[12] > counts[0] * 3, "peak {} vs trough {}", counts[12], counts[0]);
    }

    #[test]
    fn diurnal_rejects_bad_params() {
        assert!(DiurnalProfile::sinusoidal(24, 0.5).is_err());
        assert!(DiurnalProfile::sinusoidal(3, 1.0).is_err());
    }
}
