//! Autoregressive integrated moving-average (ARIMA) models.
//!
//! The paper's temporal model (§IV, Eq. 5) represents each attacker-side
//! feature series as
//!
//! ```text
//! A_t = Σ_{j=1..p} φ_j · A_{t−j} + Σ_{j=0..q} θ_j · e_{t−j}
//! ```
//!
//! i.e. an ARMA(p, q) after `d` rounds of differencing. This module
//! implements the full pipeline:
//!
//! * [`difference`] / [`integrate`] — the "I" part,
//! * [`Arima::fit`] — parameter estimation by the Hannan–Rissanen two-stage
//!   least-squares procedure (exact OLS for pure AR models),
//! * [`Arima::forecast`] — multi-step mean forecasts with re-integration,
//! * [`Arima::fitted`] / [`Arima::residuals`] — in-sample diagnostics,
//! * [`Arima::aic`] / [`Arima::bic`] — information criteria for order
//!   selection (see [`crate::select`]).

use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::forecast::{FittedModel, Forecaster};
use crate::ols::LinearModel;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// The (p, d, q) order of an ARIMA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArimaOrder {
    /// Autoregressive order (number of lagged observations).
    pub p: usize,
    /// Degree of differencing.
    pub d: usize,
    /// Moving-average order (number of lagged errors).
    pub q: usize,
}

impl ArimaOrder {
    /// Creates an order triple.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        ArimaOrder { p, d, q }
    }

    /// Total number of estimated coefficients (φ's, θ's and the constant).
    pub fn n_params(&self) -> usize {
        self.p + self.q + 1
    }
}

impl std::fmt::Display for ArimaOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Applies `d` rounds of first differencing.
///
/// # Errors
///
/// Returns [`StatsError::TooShort`] when the series has `<= d` points.
pub fn difference(series: &[f64], d: usize) -> Result<Vec<f64>> {
    if series.len() <= d {
        return Err(StatsError::TooShort { required: d + 1, actual: series.len() });
    }
    let mut out = series.to_vec();
    for _ in 0..d {
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Ok(out)
}

/// Inverts [`difference`]: given the last `d` *heads* recorded during
/// differencing (the first element of the series at each level) this is not
/// needed for forecasting, so this helper instead re-integrates a block of
/// *future* differenced values onto the tail of the original series.
///
/// `history` is the raw (undifferenced) series the model was fit on and
/// `diffed_future` the forecasts produced at the differenced level; the
/// return value is the forecasts at the original level.
///
/// # Errors
///
/// Returns [`StatsError::TooShort`] when `history.len() <= d`.
pub fn integrate(history: &[f64], diffed_future: &[f64], d: usize) -> Result<Vec<f64>> {
    if history.len() <= d {
        return Err(StatsError::TooShort { required: d + 1, actual: history.len() });
    }
    if d == 0 {
        return Ok(diffed_future.to_vec());
    }
    // Build the ladder of last values at each differencing level.
    let mut levels: Vec<Vec<f64>> = vec![history.to_vec()];
    for k in 0..d {
        let next = difference(&levels[k], 1)?;
        levels.push(next);
    }
    // Level `k` holds `history.len() - k >= d + 1 - k >= 1` points for
    // every retained `k < d` (the length guard above), so the tails
    // always exist; the typed error keeps this a `Result` path anyway.
    let mut tails: Vec<f64> = Vec::with_capacity(d);
    for level in levels.iter().take(d) {
        let &tail =
            level.last().ok_or(StatsError::TooShort { required: d + 1, actual: history.len() })?;
        tails.push(tail);
    }
    let mut out = Vec::with_capacity(diffed_future.len());
    for &df in diffed_future {
        // Walk up the ladder: add the deepest-tail first.
        let mut v = df;
        for t in tails.iter_mut().rev() {
            v += *t;
            *t = v;
        }
        out.push(v);
    }
    Ok(out)
}

/// A fitted ARIMA(p, d, q) model.
///
/// # Example
///
/// ```
/// use ddos_stats::arima::{Arima, ArimaOrder};
///
/// # fn main() -> Result<(), ddos_stats::StatsError> {
/// // A trending series is handled by d = 1.
/// let series: Vec<f64> = (0..120).map(|i| 10.0 + 0.5 * i as f64).collect();
/// let model = Arima::fit(&series, ArimaOrder::new(1, 1, 0))?;
/// let next = model.forecast(3)?;
/// // The series continues 70.0, 70.5, 71.0; the differenced AR model
/// // recovers the 0.5 slope essentially exactly.
/// assert!((next[0] - 70.0).abs() < 1e-6);
/// assert!((next[2] - 71.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arima {
    order: ArimaOrder,
    constant: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
    /// The raw training series (needed for re-integration and forecasting).
    history: Vec<f64>,
    /// Differenced training series.
    work: Vec<f64>,
    /// In-sample one-step residuals at the differenced level.
    residuals: Vec<f64>,
    sigma2: f64,
}

impl Arima {
    /// Fits the model by Hannan–Rissanen two-stage least squares.
    ///
    /// Stage 1 fits a long autoregression to estimate the innovation
    /// sequence; stage 2 regresses the differenced series on its own lags
    /// and the lagged innovation estimates. For pure AR models (q = 0) this
    /// collapses to exact conditional OLS.
    ///
    /// # Errors
    ///
    /// * [`StatsError::TooShort`] when the series cannot support the order
    ///   (needs roughly `d + max(p, q) · 3 + 10` points).
    /// * [`StatsError::NonFiniteInput`] for NaN/∞ inputs.
    /// * [`StatsError::SingularMatrix`] for degenerate (e.g. constant)
    ///   series with p + q > 0.
    pub fn fit(series: &[f64], order: ArimaOrder) -> Result<Self> {
        if series.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }
        let min_len = order.d + order.p.max(order.q) * 3 + 8;
        if series.len() < min_len {
            return Err(StatsError::TooShort { required: min_len, actual: series.len() });
        }
        let work = difference(series, order.d)?;
        let n = work.len();
        let p = order.p;
        let q = order.q;

        let (constant, ar, ma) = if p == 0 && q == 0 {
            let mean = work.iter().sum::<f64>() / n as f64;
            (mean, Vec::new(), Vec::new())
        } else if q == 0 {
            // Exact conditional least squares for AR(p).
            let (c, phi) = fit_ar_ols(&work, p)?;
            (c, phi, Vec::new())
        } else {
            fit_hannan_rissanen(&work, p, q)?
        };

        let residuals = compute_residuals(&work, constant, &ar, &ma);
        let eff_n = residuals.len().saturating_sub(p).max(1);
        let sigma2 = residuals.iter().skip(p).map(|e| e * e).sum::<f64>() / eff_n as f64;

        Ok(Arima { order, constant, ar, ma, history: series.to_vec(), work, residuals, sigma2 })
    }

    /// The model order.
    pub fn order(&self) -> ArimaOrder {
        self.order
    }

    /// The fitted constant term (at the differenced level).
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The fitted autoregressive coefficients φ₁..φ_p.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// The fitted moving-average coefficients θ₁..θ_q.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Innovation variance estimate σ².
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// In-sample one-step residuals (differenced level). The first
    /// `max(p, q)` entries are conditioning zeros.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// In-sample fitted values at the *original* level, aligned with the
    /// training series (the first `d + p` values repeat the observations, as
    /// no prediction exists for them).
    pub fn fitted(&self) -> Vec<f64> {
        let d = self.order.d;
        let mut fitted_diff = Vec::with_capacity(self.work.len());
        for (t, (w, e)) in self.work.iter().zip(&self.residuals).enumerate() {
            if t < self.order.p {
                fitted_diff.push(*w);
            } else {
                fitted_diff.push(w - e);
            }
        }
        if d == 0 {
            return fitted_diff;
        }
        // Reconstruct at the original level: fitted_t = fitted_diff_t + y_{t-1} (for d=1),
        // generalized through the differencing ladder.
        let mut out = self.history[..d].to_vec();
        for (t, fd) in fitted_diff.iter().enumerate() {
            // One-step-ahead reconstruction uses the *observed* previous values.
            let mut v = *fd;
            // Undo d rounds of differencing using observed history.
            for k in 1..=d {
                v += nth_difference_at(&self.history, k - 1, t + d - k);
            }
            out.push(v);
        }
        out
    }

    /// Mean forecast `horizon` steps ahead, at the original level.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `horizon == 0`.
    pub fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.forecast_into(horizon, &mut out)?;
        Ok(out)
    }

    /// [`Arima::forecast`] writing into a caller-owned output buffer
    /// (cleared first): the preallocated multi-step batch path. The
    /// differenced-level recursion and the re-integration ladder perform
    /// exactly the float operations of the allocating path (the ladder
    /// tails are seeded from the trailing `d + 1` history values, which
    /// is the same pairwise-subtraction tree [`integrate`] builds), so
    /// the two are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `horizon == 0`.
    pub fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        if horizon == 0 {
            return Err(StatsError::InvalidParameter {
                name: "horizon",
                detail: "forecast horizon must be nonzero".to_string(),
            });
        }
        let d = self.order.d;
        if self.history.len() <= d {
            return Err(StatsError::TooShort { required: d + 1, actual: self.history.len() });
        }
        let mut w = Vec::with_capacity(self.work.len() + horizon);
        w.extend_from_slice(&self.work);
        let mut e = Vec::with_capacity(self.residuals.len() + horizon);
        e.extend_from_slice(&self.residuals);
        out.clear();
        out.reserve(horizon);
        for _ in 0..horizon {
            let t = w.len();
            let mut v = self.constant;
            for (j, phi) in self.ar.iter().enumerate() {
                if t > j {
                    v += phi * w[t - 1 - j];
                }
            }
            for (j, theta) in self.ma.iter().enumerate() {
                if t > j && t - 1 - j < e.len() {
                    v += theta * e[t - 1 - j];
                }
            }
            w.push(v);
            e.push(0.0); // future innovations are zero in the mean forecast
            out.push(v);
        }
        if d == 0 {
            return Ok(());
        }
        // In-place re-integration: the ladder tails (last value of the
        // k-th difference of the history, k = 0..d) seed the walk.
        let n = self.history.len();
        let mut tails: Vec<f64> =
            (0..d).map(|k| nth_difference_at(&self.history, k, n - 1 - k)).collect();
        for v in out.iter_mut() {
            let mut acc = *v;
            for t in tails.iter_mut().rev() {
                acc += *t;
                *t = acc;
            }
            *v = acc;
        }
        Ok(())
    }

    /// The ψ-weights (MA(∞) representation) of the fitted ARMA part, up to
    /// `n` terms: `ψ₀ = 1`, `ψ_j = θ_j + Σ_{k=1..min(j,p)} φ_k ψ_{j−k}`.
    /// Forecast error variance at horizon `h` is `σ² Σ_{j<h} ψ_j²`.
    pub fn psi_weights(&self, n: usize) -> Vec<f64> {
        let mut psi = vec![0.0; n.max(1)];
        psi[0] = 1.0;
        for j in 1..psi.len() {
            let mut v = if j <= self.ma.len() { self.ma[j - 1] } else { 0.0 };
            for (k, phi) in self.ar.iter().enumerate() {
                if j > k {
                    v += phi * psi[j - 1 - k];
                }
            }
            psi[j] = v;
        }
        psi
    }

    /// Mean forecast with symmetric `z`-score prediction intervals, at the
    /// original level: returns `(mean, lower, upper)` per step. `z = 1.96`
    /// gives 95% intervals under Gaussian innovations.
    ///
    /// Defense provisioning wants the upper band, not the point forecast —
    /// the paper's §IV-B worries about "over-provisions of the defense
    /// resources"; the interval quantifies exactly how much headroom a
    /// given confidence costs.
    ///
    /// For differenced models the interval widths are computed on the
    /// differenced scale and accumulated through the integration, which is
    /// the standard approximation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Arima::forecast`]; additionally
    /// [`StatsError::InvalidParameter`] for a nonpositive `z`.
    pub fn forecast_with_interval(&self, horizon: usize, z: f64) -> Result<Vec<(f64, f64, f64)>> {
        if z <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "z",
                detail: format!("z-score must be positive, got {z}"),
            });
        }
        let means = self.forecast(horizon)?;
        let psi = self.psi_weights(horizon);
        let sigma = self.sigma2.sqrt();
        let mut cum = 0.0;
        let mut out = Vec::with_capacity(horizon);
        for (h, mean) in means.iter().enumerate() {
            cum += psi[h] * psi[h];
            // Integration (d > 0) accumulates the differenced-scale errors.
            let width = z * sigma * (cum * (self.order.d as f64 + 1.0)).sqrt();
            out.push((*mean, mean - width, mean + width));
        }
        Ok(out)
    }

    /// Rolling one-step-ahead predictions over a held-out continuation of
    /// the training series, re-fitting nothing: the model is applied with
    /// its frozen coefficients, consuming each true observation as it
    /// arrives. Returns one prediction per element of `test`.
    ///
    /// This mirrors the paper's evaluation protocol: train on 80% of the
    /// chronologically ordered attacks, then predict each test attack from
    /// everything observed before it.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `test` is empty.
    pub fn predict_rolling(&self, test: &[f64]) -> Result<Vec<f64>> {
        let mut preds = Vec::new();
        self.predict_rolling_into(test, &mut preds)?;
        Ok(preds)
    }

    /// [`Arima::predict_rolling`] writing into a caller-owned output
    /// buffer (cleared first): the preallocated batch path the serve
    /// stages use, so steady-state rolling prediction reuses one output
    /// allocation across models. Bit-identical to the allocating
    /// wrapper — the per-step float operations are the same code.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `test` is empty.
    pub fn predict_rolling_into(&self, test: &[f64], preds: &mut Vec<f64>) -> Result<()> {
        if test.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let d = self.order.d;
        // Preallocate for the full rolling horizon up front: each absorbed
        // observation pushes one element onto all three series, so sizing
        // them now keeps the loop free of reallocation.
        let mut full = Vec::with_capacity(self.history.len() + test.len());
        full.extend_from_slice(&self.history);
        let mut w = Vec::with_capacity(self.work.len() + test.len());
        w.extend_from_slice(&self.work);
        let mut e = Vec::with_capacity(self.residuals.len() + test.len());
        e.extend_from_slice(&self.residuals);
        preds.clear();
        preds.reserve(test.len());
        for &obs in test {
            // One-step mean forecast at differenced level.
            let t = w.len();
            let mut v = self.constant;
            for (j, phi) in self.ar.iter().enumerate() {
                if t > j {
                    v += phi * w[t - 1 - j];
                }
            }
            for (j, theta) in self.ma.iter().enumerate() {
                if t > j && t - 1 - j < e.len() {
                    v += theta * e[t - 1 - j];
                }
            }
            let pred = integrate(&full, &[v], d)?[0];
            preds.push(pred);
            // Absorb the true observation.
            full.push(obs);
            // `difference` either errors (`full.len() <= d`) or returns
            // `full.len() - d >= 1` values, so the tail always exists;
            // surface the impossible case as a typed error, not a panic.
            let new_w = *difference(&full, d)?
                .last()
                .ok_or(StatsError::TooShort { required: d + 1, actual: full.len() })?;
            w.push(new_w);
            e.push(new_w - v);
        }
        Ok(())
    }

    /// One-step mean prediction from an *arbitrary* history window using
    /// the frozen coefficients (MA terms use zero for the unknown
    /// innovations, the standard approximation when the conditioning
    /// window is short).
    ///
    /// This is how the spatiotemporal model (§VI) reuses a fitted temporal
    /// model on a target's 10-attack history.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::TooShort`] when `history` cannot supply
    /// `d + p` values.
    pub fn predict_one_from(&self, history: &[f64]) -> Result<f64> {
        let mut diffed = Vec::new();
        self.predict_one_from_with(history, &mut diffed)
    }

    /// [`Arima::predict_one_from`] with a caller-owned differencing
    /// buffer: the per-call allocation (the cloned-then-differenced
    /// history) lands in `diffed` and is reused across calls, so batch
    /// feature assembly pays zero steady-state allocation per window for
    /// the common `d = 0` orders. Bit-identical to the allocating
    /// wrapper: the in-place differencing and re-integration ladder
    /// perform the exact float operations of [`difference`] /
    /// [`integrate`] in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::TooShort`] when `history` cannot supply
    /// `d + p` values.
    pub fn predict_one_from_with(&self, history: &[f64], diffed: &mut Vec<f64>) -> Result<f64> {
        let d = self.order.d;
        let p = self.order.p;
        if history.len() < d + p.max(1) {
            return Err(StatsError::TooShort { required: d + p.max(1), actual: history.len() });
        }
        // In-place differencing, capturing each level's tail value for
        // the re-integration ladder. (For d > 0 the d-element tail list
        // is a tiny side allocation; the history-sized buffer is what
        // `diffed` amortizes.)
        diffed.clear();
        diffed.extend_from_slice(history);
        let mut tails: Vec<f64> = Vec::with_capacity(d);
        for _ in 0..d {
            // Before round `k < d` the buffer holds
            // `history.len() - k >= d + p.max(1) - k >= 1` values (the
            // length guard above), so the tail always exists; keep the
            // impossible case on the typed error path.
            let &tail = diffed
                .last()
                .ok_or(StatsError::TooShort { required: d + p.max(1), actual: history.len() })?;
            tails.push(tail);
            for i in 0..diffed.len() - 1 {
                diffed[i] = diffed[i + 1] - diffed[i];
            }
            diffed.pop();
        }
        let t = diffed.len();
        let mut v = self.constant;
        for (j, phi) in self.ar.iter().enumerate() {
            if t > j {
                v += phi * diffed[t - 1 - j];
            }
        }
        // `integrate` adds the level tails deepest-first onto the
        // differenced forecast; replicate that exact addition order.
        for &tail in tails.iter().rev() {
            v += tail;
        }
        Ok(v)
    }

    /// Akaike information criterion (Gaussian likelihood approximation).
    pub fn aic(&self) -> f64 {
        let n = self.work.len() as f64;
        let k = self.order.n_params() as f64;
        n * self.sigma2.max(1e-12).ln() + 2.0 * k
    }

    /// Bayesian information criterion.
    pub fn bic(&self) -> f64 {
        let n = self.work.len() as f64;
        let k = self.order.n_params() as f64;
        n * self.sigma2.max(1e-12).ln() + k * n.ln()
    }

    /// The training series this model was fit on.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Encodes the fitted model field-for-field into `w` (the ARIMA
    /// artifact payload). Every `f64` is written as its `to_bits`
    /// pattern, so [`Arima::decode`] reconstructs a struct that is
    /// bitwise equal to `self` — round-trip is the identity.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.order.p);
        w.usize(self.order.d);
        w.usize(self.order.q);
        w.f64(self.constant);
        w.f64_seq(&self.ar);
        w.f64_seq(&self.ma);
        w.f64_seq(&self.history);
        w.f64_seq(&self.work);
        w.f64_seq(&self.residuals);
        w.f64(self.sigma2);
    }

    /// Decodes a model encoded by [`Arima::encode`], validating the
    /// structural invariants the prediction paths rely on (coefficient
    /// counts matching the order, differenced-series lengths consistent
    /// with the history) so corrupt payloads become typed errors rather
    /// than panics downstream.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] / [`CodecError::Invalid`] on short or
    /// inconsistent input.
    pub fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        let order = ArimaOrder::new(r.usize()?, r.usize()?, r.usize()?);
        let constant = r.f64()?;
        let ar = r.f64_seq()?;
        let ma = r.f64_seq()?;
        let history = r.f64_seq()?;
        let work = r.f64_seq()?;
        let residuals = r.f64_seq()?;
        let sigma2 = r.f64()?;
        if ar.len() != order.p || ma.len() != order.q {
            return Err(CodecError::Invalid {
                detail: format!(
                    "coefficient counts ({}, {}) disagree with order {order}",
                    ar.len(),
                    ma.len()
                ),
            });
        }
        if history.len() <= order.d || work.len() != history.len() - order.d {
            return Err(CodecError::Invalid {
                detail: format!(
                    "history of {} cannot yield {} values at differencing degree {}",
                    history.len(),
                    work.len(),
                    order.d
                ),
            });
        }
        if residuals.len() != work.len() {
            return Err(CodecError::Invalid {
                detail: format!(
                    "{} residuals for {} differenced observations",
                    residuals.len(),
                    work.len()
                ),
            });
        }
        Ok(Arima { order, constant, ar, ma, history, work, residuals, sigma2 })
    }
}

impl Forecaster<[f64]> for ArimaOrder {
    type Fitted = Arima;
    type Error = StatsError;

    fn fit(&self, input: &[f64]) -> Result<Arima> {
        Arima::fit(input, *self)
    }
}

impl FittedModel<[f64]> for Arima {
    type Error = StatsError;

    /// The batch is the held-out continuation of the training series:
    /// one rolling one-step prediction per observation, absorbing each
    /// truth as it arrives ([`Arima::predict_rolling_into`]).
    fn predict_batch_into(&self, queries: &[f64], out: &mut Vec<f64>) -> Result<()> {
        self.predict_rolling_into(queries, out)
    }
}

/// Value of the `k`-th difference of `series` at index `idx` (0-th
/// difference is the series itself).
fn nth_difference_at(series: &[f64], k: usize, idx: usize) -> f64 {
    let mut vals: Vec<f64> = series[idx..=idx + k].to_vec();
    for _ in 0..k {
        vals = vals.windows(2).map(|w| w[1] - w[0]).collect();
    }
    vals[0]
}

/// Conditional OLS fit of an AR(p) with intercept.
fn fit_ar_ols(work: &[f64], p: usize) -> Result<(f64, Vec<f64>)> {
    let n = work.len();
    if n <= p + 1 {
        return Err(StatsError::TooShort { required: p + 2, actual: n });
    }
    let xs: Vec<Vec<f64>> = (p..n).map(|t| (1..=p).map(|j| work[t - j]).collect()).collect();
    let ys: Vec<f64> = work[p..].to_vec();
    match LinearModel::fit(&xs, &ys) {
        Ok(m) => Ok((m.intercept(), m.coefficients().to_vec())),
        Err(StatsError::SingularMatrix) => {
            // Constant series: fall back to mean-only model.
            let mean = work.iter().sum::<f64>() / n as f64;
            Ok((mean, vec![0.0; p]))
        }
        Err(e) => Err(e),
    }
}

/// Hannan–Rissanen estimation for ARMA(p, q).
fn fit_hannan_rissanen(work: &[f64], p: usize, q: usize) -> Result<(f64, Vec<f64>, Vec<f64>)> {
    let n = work.len();
    // Stage 1: long AR to estimate innovations.
    let long_p = ((n as f64).ln().ceil() as usize + p + q).min(n / 4).max(p + q + 1);
    let (c1, phi1) = fit_ar_ols(work, long_p)?;
    let mut e = vec![0.0; n];
    for t in long_p..n {
        let mut pred = c1;
        for (j, ph) in phi1.iter().enumerate() {
            pred += ph * work[t - 1 - j];
        }
        e[t] = work[t] - pred;
    }
    // Stage 2: regress on p lags of the series and q lags of ê.
    let start = long_p + q;
    if n <= start + p + q + 2 {
        return Err(StatsError::TooShort { required: start + p + q + 3, actual: n });
    }
    let mut xs = Vec::with_capacity(n - start);
    let mut ys = Vec::with_capacity(n - start);
    for t in start.max(p)..n {
        let mut row = Vec::with_capacity(p + q);
        for j in 1..=p {
            row.push(work[t - j]);
        }
        for j in 1..=q {
            row.push(e[t - j]);
        }
        xs.push(row);
        ys.push(work[t]);
    }
    let m = LinearModel::fit(&xs, &ys)?;
    let coef = m.coefficients();
    let ar = coef[..p].to_vec();
    let ma = coef[p..].to_vec();
    Ok((m.intercept(), ar, ma))
}

/// Conditional (zero-initialized) residual recursion.
fn compute_residuals(work: &[f64], constant: f64, ar: &[f64], ma: &[f64]) -> Vec<f64> {
    let n = work.len();
    let p = ar.len();
    let mut e = vec![0.0; n];
    for t in 0..n {
        if t < p {
            continue; // conditioning period
        }
        let mut pred = constant;
        for (j, phi) in ar.iter().enumerate() {
            pred += phi * work[t - 1 - j];
        }
        for (j, theta) in ma.iter().enumerate() {
            if t > j {
                pred += theta * e[t - 1 - j];
            }
        }
        e[t] = work[t] - pred;
    }
    e
}

/// A lightweight vector-autoregression-style convenience: fits independent
/// ARIMA models of the same order to several aligned series at once.
///
/// The temporal model tracks three features (`A^f`, `A^b`, `A^s`) per
/// family; this helper keeps their models together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaEnsemble {
    models: Vec<Arima>,
}

impl ArimaEnsemble {
    /// Fits one model per series.
    ///
    /// # Errors
    ///
    /// Propagates the first fitting error; returns
    /// [`StatsError::EmptyInput`] when `series.is_empty()`.
    pub fn fit(series: &[Vec<f64>], order: ArimaOrder) -> Result<Self> {
        if series.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let models = series.iter().map(|s| Arima::fit(s, order)).collect::<Result<Vec<_>>>()?;
        Ok(ArimaEnsemble { models })
    }

    /// The fitted member models, in input order.
    pub fn models(&self) -> &[Arima] {
        &self.models
    }

    /// Forecasts every member `horizon` steps ahead.
    ///
    /// # Errors
    ///
    /// Propagates the member forecast errors.
    pub fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>> {
        self.models.iter().map(|m| m.forecast(horizon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn simulate_arma(
        phi: &[f64],
        theta: &[f64],
        c: f64,
        n: usize,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = phi.len();
        let q = theta.len();
        let mut x = vec![0.0f64; n + 100];
        let mut e = vec![0.0f64; n + 100];
        for t in p.max(q)..x.len() {
            let et = (rng.gen::<f64>() - 0.5) * 2.0 * noise;
            let mut v = c + et;
            for (j, ph) in phi.iter().enumerate() {
                v += ph * x[t - 1 - j];
            }
            for (j, th) in theta.iter().enumerate() {
                v += th * e[t - 1 - j];
            }
            x[t] = v;
            e[t] = et;
        }
        x[100..].to_vec()
    }

    #[test]
    fn difference_basics() {
        assert_eq!(difference(&[1.0, 3.0, 6.0], 1).unwrap(), vec![2.0, 3.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0], 2).unwrap(), vec![1.0]);
        assert!(difference(&[1.0], 1).is_err());
    }

    #[test]
    fn integrate_inverts_difference_one_step_chain() {
        let hist = vec![2.0, 5.0, 9.0, 14.0];
        // future differenced values 6.0, 7.0 should integrate to 20, 27
        let out = integrate(&hist, &[6.0, 7.0], 1).unwrap();
        assert_eq!(out, vec![20.0, 27.0]);
    }

    #[test]
    fn integrate_d2() {
        // y = t², first diff = 2t+1, second diff = 2 (constant).
        let hist: Vec<f64> = (0..6).map(|t| (t * t) as f64).collect();
        let out = integrate(&hist, &[2.0, 2.0], 2).unwrap();
        assert_eq!(out, vec![36.0, 49.0]);
    }

    #[test]
    fn integrate_d0_is_identity() {
        assert_eq!(integrate(&[1.0], &[5.0, 6.0], 0).unwrap(), vec![5.0, 6.0]);
    }

    #[test]
    fn ar1_recovery() {
        let series = simulate_arma(&[0.7], &[], 1.0, 3000, 0.5, 11);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        assert!(
            (model.ar_coefficients()[0] - 0.7).abs() < 0.05,
            "phi {} should be near 0.7",
            model.ar_coefficients()[0]
        );
        // Unconditional mean = c / (1 - phi) ≈ 3.33
        let implied_mean = model.constant() / (1.0 - model.ar_coefficients()[0]);
        assert!((implied_mean - 1.0 / 0.3).abs() < 0.3, "mean {implied_mean}");
    }

    #[test]
    fn ar2_recovery() {
        let series = simulate_arma(&[0.5, 0.3], &[], 0.0, 5000, 0.5, 12);
        let model = Arima::fit(&series, ArimaOrder::new(2, 0, 0)).unwrap();
        assert!((model.ar_coefficients()[0] - 0.5).abs() < 0.07);
        assert!((model.ar_coefficients()[1] - 0.3).abs() < 0.07);
    }

    #[test]
    fn ma1_recovery_sign() {
        let series = simulate_arma(&[], &[0.6], 0.0, 8000, 1.0, 13);
        let model = Arima::fit(&series, ArimaOrder::new(0, 0, 1)).unwrap();
        let theta = model.ma_coefficients()[0];
        assert!(theta > 0.3 && theta < 0.9, "theta {theta} should be near 0.6");
    }

    #[test]
    fn arma11_fits_better_than_white_noise() {
        let series = simulate_arma(&[0.6], &[0.4], 0.0, 4000, 1.0, 14);
        let arma = Arima::fit(&series, ArimaOrder::new(1, 0, 1)).unwrap();
        let wn = Arima::fit(&series, ArimaOrder::new(0, 0, 0)).unwrap();
        assert!(arma.sigma2() < wn.sigma2());
        assert!(arma.aic() < wn.aic());
    }

    #[test]
    fn trend_handled_by_differencing() {
        let series: Vec<f64> = (0..200).map(|i| 5.0 + 2.0 * i as f64).collect();
        let model = Arima::fit(&series, ArimaOrder::new(0, 1, 0)).unwrap();
        let fc = model.forecast(3).unwrap();
        // Next values continue the line: 405, 407, 409.
        assert!((fc[0] - 405.0).abs() < 0.5, "fc {fc:?}");
        assert!((fc[2] - 409.0).abs() < 0.5);
    }

    #[test]
    fn forecast_horizon_zero_rejected() {
        let series: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        assert!(model.forecast(0).is_err());
    }

    #[test]
    fn forecast_of_mean_model_is_mean() {
        let series = vec![4.0, 6.0, 4.0, 6.0, 4.0, 6.0, 4.0, 6.0, 4.0, 6.0];
        let model = Arima::fit(&series, ArimaOrder::new(0, 0, 0)).unwrap();
        let fc = model.forecast(2).unwrap();
        assert!((fc[0] - 5.0).abs() < 1e-9);
        assert!((fc[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn residuals_align_and_shrink_with_fit() {
        let series = simulate_arma(&[0.8], &[], 0.0, 1000, 0.3, 15);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        assert_eq!(model.residuals().len(), series.len());
        let resid_var = model.sigma2();
        let series_var = crate::metrics::variance(&series).unwrap();
        assert!(resid_var < series_var * 0.6, "{resid_var} vs {series_var}");
    }

    #[test]
    fn fitted_matches_series_length() {
        let series = simulate_arma(&[0.5], &[], 1.0, 300, 0.5, 16);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        assert_eq!(model.fitted().len(), series.len());
        let model_d = Arima::fit(&series, ArimaOrder::new(1, 1, 0)).unwrap();
        assert_eq!(model_d.fitted().len(), series.len());
    }

    #[test]
    fn predict_rolling_tracks_ar_process() {
        let series = simulate_arma(&[0.9], &[], 0.5, 2200, 0.2, 17);
        let (train, test) = series.split_at(2000);
        let model = Arima::fit(train, ArimaOrder::new(1, 0, 0)).unwrap();
        let preds = model.predict_rolling(test).unwrap();
        assert_eq!(preds.len(), test.len());
        let rmse = crate::metrics::rmse(&preds, test).unwrap();
        // One-step error should be near the innovation std (~0.115 for uniform(-0.2,0.2)).
        assert!(rmse < 0.2, "rolling RMSE {rmse}");
    }

    #[test]
    fn predict_rolling_rejects_empty() {
        let series: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        assert!(model.predict_rolling(&[]).is_err());
    }

    #[test]
    fn psi_weights_ar1_are_geometric() {
        let series = simulate_arma(&[0.6], &[], 0.0, 2000, 0.5, 27);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        let phi = model.ar_coefficients()[0];
        let psi = model.psi_weights(5);
        assert_eq!(psi[0], 1.0);
        for (j, p) in psi.iter().enumerate().skip(1) {
            assert!((p - phi.powi(j as i32)).abs() < 1e-9, "psi[{j}] = {p}");
        }
    }

    #[test]
    fn interval_forecast_widens_with_horizon_and_z() {
        let series = simulate_arma(&[0.7], &[], 1.0, 1500, 0.5, 28);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        let bands = model.forecast_with_interval(5, 1.96).unwrap();
        for (mean, lo, hi) in &bands {
            assert!(lo < mean && mean < hi);
        }
        // Width must be nondecreasing with horizon for a stationary AR(1).
        for w in bands.windows(2) {
            let w0 = w[0].2 - w[0].1;
            let w1 = w[1].2 - w[1].1;
            assert!(w1 >= w0 - 1e-9, "interval shrank: {w0} -> {w1}");
        }
        // Larger z → wider bands.
        let wide = model.forecast_with_interval(5, 2.58).unwrap();
        assert!(wide[0].2 - wide[0].1 > bands[0].2 - bands[0].1);
        // Coverage sanity: one-step truth should fall inside the 95% band
        // for most continuation draws; test the mean of the band instead
        // (deterministic): band center equals the mean forecast.
        let fc = model.forecast(5).unwrap();
        for (b, m) in bands.iter().zip(&fc) {
            assert!((b.0 - m).abs() < 1e-12);
        }
        assert!(model.forecast_with_interval(3, 0.0).is_err());
    }

    #[test]
    fn predict_one_from_matches_internal_state_for_ar() {
        let series = simulate_arma(&[0.6], &[], 0.3, 500, 0.4, 29);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        // From its own full history the frozen prediction must match a
        // rolling prediction's first step.
        let test = [series[series.len() - 1] * 0.6 + 0.3];
        let rolled = model.predict_rolling(&test).unwrap()[0];
        let frozen = model.predict_one_from(&series).unwrap();
        assert!((rolled - frozen).abs() < 1e-9, "{rolled} vs {frozen}");
        // Short-window prediction still works with p values.
        let window = &series[series.len() - 3..];
        let v = model.predict_one_from(window).unwrap();
        assert!(v.is_finite());
        assert!(model.predict_one_from(&[]).is_err());
    }

    #[test]
    fn predict_one_from_handles_differencing() {
        let series: Vec<f64> = (0..100).map(|i| 3.0 * i as f64).collect();
        let model = Arima::fit(&series, ArimaOrder::new(0, 1, 0)).unwrap();
        // A fresh linear window should continue its own line, not the
        // training line.
        let window: Vec<f64> = (0..10).map(|i| 100.0 + 5.0 * i as f64).collect();
        let v = model.predict_one_from(&window).unwrap();
        // Drift from training is +3/step; window ends at 145.
        assert!((v - 148.0).abs() < 0.5, "prediction {v}");
    }

    #[test]
    fn predict_one_from_with_matches_ladder_composition_bitwise() {
        // The scratch variant replicates difference + AR + integrate
        // inline; pin it bit-for-bit against the explicit composition for
        // every practical differencing depth, reusing one dirty buffer.
        let mut lcg = 0x2545_F491_4F6C_DD1Du64;
        let series: Vec<f64> = (0..120)
            .map(|i| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = (lcg >> 40) as f64 / (1u64 << 24) as f64;
                (i as f64 * 0.37).sin() * 9.0 + i as f64 + noise * 4.0
            })
            .collect();
        let mut scratch = vec![f64::NAN; 3];
        for (p, d, q) in [(2, 0, 1), (1, 1, 0), (2, 2, 0)] {
            let model = Arima::fit(&series, ArimaOrder::new(p, d, q)).unwrap();
            for window_len in [d + p.max(1), 10, 40] {
                let window = &series[series.len() - window_len..];
                let via_ladder = {
                    let w = difference(window, d).unwrap();
                    let t = w.len();
                    let mut v = model.constant;
                    for (j, phi) in model.ar.iter().enumerate() {
                        if t > j {
                            v += phi * w[t - 1 - j];
                        }
                    }
                    integrate(window, &[v], d).unwrap()[0]
                };
                let via_scratch = model.predict_one_from_with(window, &mut scratch).unwrap();
                assert_eq!(via_scratch.to_bits(), via_ladder.to_bits(), "order ({p},{d},{q})");
                assert_eq!(model.predict_one_from(window).unwrap().to_bits(), via_ladder.to_bits());
            }
        }
    }

    #[test]
    fn fit_rejects_nan_and_short() {
        assert!(matches!(
            Arima::fit(&[1.0, f64::NAN, 2.0], ArimaOrder::new(0, 0, 0)),
            Err(StatsError::NonFiniteInput)
        ));
        assert!(matches!(
            Arima::fit(&[1.0, 2.0], ArimaOrder::new(2, 0, 0)),
            Err(StatsError::TooShort { .. })
        ));
    }

    #[test]
    fn constant_series_falls_back_gracefully() {
        let series = vec![5.0; 100];
        let model = Arima::fit(&series, ArimaOrder::new(2, 0, 0)).unwrap();
        let fc = model.forecast(2).unwrap();
        assert!((fc[0] - 5.0).abs() < 1e-6, "fc {fc:?}");
    }

    #[test]
    fn bic_penalizes_more_than_aic_for_large_n() {
        let series = simulate_arma(&[0.5], &[], 0.0, 500, 1.0, 18);
        let m = Arima::fit(&series, ArimaOrder::new(3, 0, 2)).unwrap();
        let m0 = Arima::fit(&series, ArimaOrder::new(1, 0, 0)).unwrap();
        // Relative penalty for the bigger model is larger under BIC.
        assert!((m.bic() - m0.bic()) > (m.aic() - m0.aic()));
    }

    #[test]
    fn ensemble_fits_multiple_series() {
        let s1 = simulate_arma(&[0.5], &[], 0.0, 300, 0.5, 19);
        let s2 = simulate_arma(&[0.7], &[], 1.0, 300, 0.5, 20);
        let ens = ArimaEnsemble::fit(&[s1, s2], ArimaOrder::new(1, 0, 0)).unwrap();
        assert_eq!(ens.models().len(), 2);
        let fcs = ens.forecast(4).unwrap();
        assert_eq!(fcs.len(), 2);
        assert_eq!(fcs[0].len(), 4);
        assert!(ArimaEnsemble::fit(&[], ArimaOrder::new(1, 0, 0)).is_err());
    }

    #[test]
    fn forecast_into_matches_integrate_ladder_bitwise() {
        // The in-place re-integration must reproduce `integrate` exactly,
        // including for d = 2 where the ladder tails interact.
        for d in [0usize, 1, 2] {
            let series: Vec<f64> =
                (0..160).map(|i| 3.0 + 0.7 * i as f64 + ((i * i) % 13) as f64 * 0.21).collect();
            let model = Arima::fit(&series, ArimaOrder::new(1, d, 0)).unwrap();
            let mut out = Vec::new();
            model.forecast_into(7, &mut out).unwrap();
            // Recompute the differenced-level forecasts and integrate the
            // reference way.
            let mut w = model.work.clone();
            let mut fut = Vec::new();
            for _ in 0..7 {
                let t = w.len();
                let mut v = model.constant();
                for (j, phi) in model.ar_coefficients().iter().enumerate() {
                    if t > j {
                        v += phi * w[t - 1 - j];
                    }
                }
                w.push(v);
                fut.push(v);
            }
            let reference = integrate(model.history(), &fut, d).unwrap();
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "d = {d}");
            }
            // And the allocating wrapper is the same code path.
            let wrapped = model.forecast(7).unwrap();
            for (a, b) in out.iter().zip(&wrapped) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn predict_batch_trait_matches_predict_rolling_bitwise() {
        use crate::forecast::{FittedModel, Forecaster};
        let series = simulate_arma(&[0.7, -0.2], &[0.3], 0.4, 600, 0.5, 31);
        let (train, test) = series.split_at(560);
        let order = ArimaOrder::new(2, 1, 1);
        let spec_fit = order.fit(train).unwrap();
        let direct_fit = Arima::fit(train, order).unwrap();
        assert_eq!(spec_fit, direct_fit);
        let rolled = direct_fit.predict_rolling(test).unwrap();
        let batched = spec_fit.predict_batch(test).unwrap();
        assert_eq!(rolled.len(), batched.len());
        for (a, b) in rolled.iter().zip(&batched) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_round_trip_is_identity() {
        use crate::codec::{Reader, Writer};
        let series = simulate_arma(&[0.6], &[0.25], 0.1, 400, 0.7, 33);
        let model = Arima::fit(&series, ArimaOrder::new(1, 1, 1)).unwrap();
        let mut w = Writer::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Arima::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(model, back);
        // Truncation at every prefix must be a typed error, not a panic.
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(Arima::decode(&mut Reader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn order_display_and_params() {
        let o = ArimaOrder::new(2, 1, 1);
        assert_eq!(o.to_string(), "ARIMA(2,1,1)");
        assert_eq!(o.n_params(), 4);
    }

    /// Regression tests for the former `expect("nonempty")` panic sites:
    /// every helper must stay on the typed-error path (or succeed) at the
    /// minimal legal input lengths, never unwind.
    #[test]
    fn minimal_length_inputs_never_panic() {
        // `integrate` at exactly `history.len() == d + 1` — the shortest
        // history its guard admits, where the deepest level holds one
        // value. Re-integrating a zero difference carries the last raw
        // value forward, so with history [1, 3] (d = 1) the forecast is 3.
        let out = integrate(&[1.0, 3.0], &[0.0], 1).unwrap();
        assert_eq!(out, vec![3.0]);
        let out = integrate(&[2.0, 3.0, 5.0], &[0.0, 0.0], 2).unwrap();
        assert_eq!(out.len(), 2);
        // One shorter is a typed error, not a panic.
        assert_eq!(
            integrate(&[3.0], &[0.0], 1),
            Err(StatsError::TooShort { required: 2, actual: 1 })
        );

        // `predict_one_from` at `history.len() == d + max(p, 1)` for a
        // differencing model, including the degenerate d = p = 0 order
        // (pure MA/constant: one observation is the minimum window).
        let series: Vec<f64> = (0..60).map(|i| 5.0 + 0.3 * i as f64).collect();
        let diff_model = Arima::fit(&series, ArimaOrder::new(1, 1, 0)).unwrap();
        assert!(diff_model.predict_one_from(&[4.0, 7.0]).unwrap().is_finite());
        assert_eq!(
            diff_model.predict_one_from(&[4.0]),
            Err(StatsError::TooShort { required: 2, actual: 1 })
        );
        let flat = Arima::fit(&series, ArimaOrder::new(0, 0, 0)).unwrap();
        assert!(flat.predict_one_from(&[4.0]).unwrap().is_finite());
        assert_eq!(
            flat.predict_one_from(&[]),
            Err(StatsError::TooShort { required: 1, actual: 0 })
        );

        // `predict_rolling` with d > 0 exercises the absorbed-observation
        // re-differencing tail on every step.
        let mut preds = Vec::new();
        diff_model.predict_rolling_into(&[23.0, 23.3], &mut preds).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}
