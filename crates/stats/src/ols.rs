//! Ordinary least squares: simple and multivariate linear regression.
//!
//! The spatiotemporal model of the paper (§VI) attaches a multivariate
//! linear regression (MLR) to every leaf of a regression tree; the temporal
//! model's AR component is also fit by least squares. Both paths go through
//! [`LinearModel`].

use crate::codec::{CodecResult, Reader, Writer};
use crate::forecast::FittedModel;
use crate::matrix::{lstsq_into, LstsqScratch, Matrix};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Reusable buffers for [`LinearModel::fit_prepared`]: the QR workspace
/// plus the solution and fitted-value vectors. One scratch serves any
/// sequence of fits of any size; buffers grow to the high-water mark and
/// are reused allocation-free after that.
#[derive(Debug, Default)]
pub struct OlsScratch {
    lstsq: LstsqScratch,
    beta: Vec<f64>,
    fitted: Vec<f64>,
}

/// A fitted linear model `y = β₀ + β₁ x₁ + … + βₖ xₖ`.
///
/// Construct with [`LinearModel::fit`] (multivariate) or
/// [`LinearModel::fit_simple`] (single regressor).
///
/// # Example
///
/// ```
/// use ddos_stats::ols::LinearModel;
///
/// # fn main() -> Result<(), ddos_stats::StatsError> {
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
/// let model = LinearModel::fit(&xs, &ys)?;
/// assert!((model.intercept() - 3.0).abs() < 1e-8);
/// assert!((model.coefficients()[0] - 2.0).abs() < 1e-8);
/// assert!((model.predict(&[10.0])? - 23.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
    r_squared: f64,
    residual_std: f64,
    n_obs: usize,
}

impl LinearModel {
    /// Fits a multivariate linear regression with an intercept.
    ///
    /// `xs` holds one row of regressors per observation; `ys` the responses.
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] when `xs` is empty.
    /// * [`StatsError::LengthMismatch`] when `xs.len() != ys.len()`.
    /// * [`StatsError::TooShort`] when there are fewer observations than
    ///   parameters (k + 1).
    /// * [`StatsError::SingularMatrix`] for collinear designs.
    /// * [`StatsError::NonFiniteInput`] when inputs contain NaN/∞.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch { left: xs.len(), right: ys.len() });
        }
        let k = xs[0].len();
        let p = k + 1;
        if xs.len() < p {
            return Err(StatsError::TooShort { required: p, actual: xs.len() });
        }
        for row in xs {
            if row.len() != k {
                return Err(StatsError::DimensionMismatch {
                    detail: format!("regressor row has {} entries, expected {k}", row.len()),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(StatsError::NonFiniteInput);
            }
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }

        // Design matrix with leading column of ones, assembled row-major
        // straight into the flat buffer (no per-row Vec).
        let mut data = Vec::with_capacity(xs.len() * p);
        for r in xs {
            data.push(1.0);
            data.extend_from_slice(r);
        }
        let design = Matrix::from_vec(xs.len(), p, data)?;
        Self::fit_design(design, ys, p)
    }

    /// Fits on the observation subset `indices` of `(xs, ys)` without
    /// materializing the subset: bit-identical to
    /// `fit(&gather(xs, indices), &gather(ys, indices))` (the design
    /// matrix rows are assembled in `indices` order and every reduction
    /// runs in the same order), but with one less row-clone pass. This is
    /// the CART leaf-fit hot path: tree growth fits one local model per
    /// node on that node's sample subset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearModel::fit`], evaluated on the selected
    /// subset ([`StatsError::EmptyInput`] for empty `indices`). Callers
    /// must ensure every index is in range; out-of-range indices panic.
    pub fn fit_indexed(xs: &[Vec<f64>], ys: &[f64], indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch { left: xs.len(), right: ys.len() });
        }
        let k = xs[indices[0]].len();
        let p = k + 1;
        if indices.len() < p {
            return Err(StatsError::TooShort { required: p, actual: indices.len() });
        }
        for &i in indices {
            let row = &xs[i];
            if row.len() != k {
                return Err(StatsError::DimensionMismatch {
                    detail: format!("regressor row has {} entries, expected {k}", row.len()),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(StatsError::NonFiniteInput);
            }
        }
        if indices.iter().any(|&i| !ys[i].is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }

        let mut data = Vec::with_capacity(indices.len() * p);
        for &i in indices {
            data.push(1.0);
            data.extend_from_slice(&xs[i]);
        }
        let design = Matrix::from_vec(indices.len(), p, data)?;
        let yv: Vec<f64> = indices.iter().map(|&i| ys[i]).collect();
        Self::fit_design(design, &yv, p)
    }

    /// Shared OLS core over a pre-built design (leading intercept column).
    fn fit_design(design: Matrix, ys: &[f64], p: usize) -> Result<Self> {
        let beta = design.lstsq(ys)?;

        let fitted = design.mat_vec(&beta)?;
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = ys.iter().zip(&fitted).map(|(y, f)| (y - f).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        let dof = (ys.len() - p).max(1);
        let residual_std = (ss_res / dof as f64).sqrt();

        Ok(LinearModel {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            r_squared,
            residual_std,
            n_obs: ys.len(),
        })
    }

    /// Fits from a pre-assembled row-major design whose rows already carry
    /// the leading `1.0` intercept column — the allocation-free twin of
    /// [`LinearModel::fit_indexed`] for callers (CART leaf fits) that keep
    /// the design rows of a parent node alive across its children.
    ///
    /// `design` is `ys.len() × p` row-major; `p` counts the intercept
    /// column. Bit-identical to gathering the same rows and calling
    /// [`LinearModel::fit`]: the QR, fitted values, and every reduction run
    /// in the same floating-point order.
    ///
    /// Unlike `fit`/`fit_indexed` this does **not** scan for non-finite
    /// inputs — the caller is expected to have validated its samples once
    /// up front (CART does, at dataset construction). Feeding NaN/∞ here
    /// yields a garbage-coefficient model or a [`StatsError::SingularMatrix`]
    /// instead of [`StatsError::NonFiniteInput`].
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] when `ys` is empty.
    /// * [`StatsError::DimensionMismatch`] when `design.len() != ys.len() * p`.
    /// * [`StatsError::TooShort`] when there are fewer rows than `p`.
    /// * [`StatsError::SingularMatrix`] for collinear designs.
    pub fn fit_prepared(
        design: &[f64],
        ys: &[f64],
        p: usize,
        scratch: &mut OlsScratch,
    ) -> Result<Self> {
        if ys.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if design.len() != ys.len() * p {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "design has {} entries, expected {} rows × {p}",
                    design.len(),
                    ys.len()
                ),
            });
        }
        if ys.len() < p {
            return Err(StatsError::TooShort { required: p, actual: ys.len() });
        }

        let beta = &mut scratch.beta;
        lstsq_into(design, ys.len(), p, ys, &mut scratch.lstsq, beta)?;

        // Same reduction order as `Matrix::mat_vec` row by row.
        let fitted = &mut scratch.fitted;
        fitted.clear();
        fitted.extend(
            design
                .chunks_exact(p)
                .map(|row| row.iter().zip(beta.iter()).map(|(a, b)| a * b).sum::<f64>()),
        );
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = ys.iter().zip(fitted.iter()).map(|(y, f)| (y - f).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        let dof = (ys.len() - p).max(1);
        let residual_std = (ss_res / dof as f64).sqrt();

        Ok(LinearModel {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            r_squared,
            residual_std,
            n_obs: ys.len(),
        })
    }

    /// Fits a simple (single-regressor) linear regression `y = a + b x`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearModel::fit`].
    pub fn fit_simple(x: &[f64], y: &[f64]) -> Result<Self> {
        let xs: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        LinearModel::fit(&xs, y)
    }

    /// Predicts the response for one regressor row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `x` has the wrong
    /// number of entries.
    pub fn predict(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "input has {} regressors, model expects {}",
                    x.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(self.intercept + self.coefficients.iter().zip(x).map(|(b, v)| b * v).sum::<f64>())
    }

    /// Predicts the response for many regressor rows.
    ///
    /// # Errors
    ///
    /// Same as [`LinearModel::predict`], applied to each row.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>> {
        xs.iter().map(|r| self.predict(r)).collect()
    }

    /// Predicts the response for many rows packed in a flat row-major
    /// slice (`xs.len() == n_rows * width`), appending one value per row
    /// to `out`. The allocation-free twin of
    /// [`LinearModel::predict_many`]: batch callers keep their design in
    /// one contiguous buffer and reuse `out` across calls, paying zero
    /// per-row allocation. Each row's dot product runs the exact float
    /// operations of [`LinearModel::predict`] in the same order, so the
    /// two paths are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `width` differs
    /// from the model's regressor count or `xs.len()` is not a multiple
    /// of `width`.
    pub fn predict_many_into(&self, xs: &[f64], width: usize, out: &mut Vec<f64>) -> Result<()> {
        if width != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "input has {width} regressors, model expects {}",
                    self.coefficients.len()
                ),
            });
        }
        if width == 0 {
            // Zero-width rows carry no row count; an intercept-only model
            // has nothing to batch over.
            if !xs.is_empty() {
                return Err(StatsError::DimensionMismatch {
                    detail: format!("flat design has {} entries, expected 0 (width 0)", xs.len()),
                });
            }
            return Ok(());
        }
        if !xs.len().is_multiple_of(width) {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "flat design has {} entries, not a multiple of width {width}",
                    xs.len()
                ),
            });
        }
        out.reserve(xs.len() / width);
        for row in xs.chunks_exact(width) {
            out.push(
                self.intercept + self.coefficients.iter().zip(row).map(|(b, v)| b * v).sum::<f64>(),
            );
        }
        Ok(())
    }

    /// The fitted intercept β₀.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients β₁..βₖ.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Residual standard deviation (√(SSR / dof)).
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Number of observations used for the fit.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Number of regressors (excluding the intercept).
    pub fn n_regressors(&self) -> usize {
        self.coefficients.len()
    }

    /// Encodes the fitted model field-for-field into `w` (every `f64`
    /// as its bit pattern): the payload fragment CART leaves embed in
    /// tree artifacts. Round-trip through [`LinearModel::decode`] is the
    /// identity on the struct.
    pub fn encode(&self, w: &mut Writer) {
        w.f64(self.intercept);
        w.f64_seq(&self.coefficients);
        w.f64(self.r_squared);
        w.f64(self.residual_std);
        w.usize(self.n_obs);
    }

    /// Decodes a model encoded by [`LinearModel::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`](crate::codec::CodecError) on truncated or
    /// malformed input.
    pub fn decode(r: &mut Reader<'_>) -> CodecResult<Self> {
        Ok(LinearModel {
            intercept: r.f64()?,
            coefficients: r.f64_seq()?,
            r_squared: r.f64()?,
            residual_std: r.f64()?,
            n_obs: r.usize()?,
        })
    }
}

impl FittedModel<[Vec<f64>]> for LinearModel {
    type Error = StatsError;

    /// One prediction per feature row, bit-identical to a
    /// [`LinearModel::predict`] loop — this is what lets the plain linear
    /// baseline slot into the forecaster-zoo evaluation next to the tree
    /// ensembles.
    fn predict_batch_into(&self, queries: &[Vec<f64>], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.reserve(queries.len());
        for q in queries {
            out.push(self.predict(q)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 - 1.5 * v).collect();
        let m = LinearModel::fit_simple(&x, &y).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        assert!((m.coefficients()[0] + 1.5).abs() < 1e-9);
        assert!((m.r_squared() - 1.0).abs() < 1e-12);
        assert!(m.residual_std() < 1e-8);
    }

    #[test]
    fn multivariate_recovers_plane() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 5) as f64, (i / 5) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-8);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-8);
        assert_eq!(m.n_regressors(), 2);
        assert_eq!(m.n_obs(), 30);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> =
            (0..100).map(|i| 2.0 * i as f64 + if i % 3 == 0 { 1.0 } else { -0.5 }).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!(m.r_squared() > 0.99);
        assert!(m.residual_std() > 0.0);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(matches!(LinearModel::fit(&xs, &[1.0]), Err(StatsError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(LinearModel::fit(&[], &[]), Err(StatsError::EmptyInput)));
    }

    #[test]
    fn rejects_underdetermined() {
        let xs = vec![vec![1.0, 2.0]];
        assert!(matches!(LinearModel::fit(&xs, &[1.0]), Err(StatsError::TooShort { .. })));
    }

    #[test]
    fn rejects_collinear() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(LinearModel::fit(&xs, &ys).is_err());
    }

    #[test]
    fn rejects_nan() {
        let xs = vec![vec![1.0], vec![f64::NAN], vec![3.0]];
        assert!(matches!(LinearModel::fit(&xs, &[1.0, 2.0, 3.0]), Err(StatsError::NonFiniteInput)));
    }

    #[test]
    fn predict_validates_width() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!(m.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_response_r2_is_one() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 5];
        let m = LinearModel::fit(&xs, &ys).unwrap();
        assert!((m.predict(&[3.0]).unwrap() - 7.0).abs() < 1e-9);
        assert_eq!(m.r_squared(), 1.0);
    }

    #[test]
    fn fit_indexed_matches_gathered_fit_bitwise() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, ((i * 3) % 11) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 0.7 * r[0] - 1.3 * r[1] + 4.0).collect();
        let indices: Vec<usize> = vec![3, 5, 8, 13, 21, 34, 1, 2];
        let gathered_x: Vec<Vec<f64>> = indices.iter().map(|&i| xs[i].clone()).collect();
        let gathered_y: Vec<f64> = indices.iter().map(|&i| ys[i]).collect();
        let direct = LinearModel::fit(&gathered_x, &gathered_y).unwrap();
        let indexed = LinearModel::fit_indexed(&xs, &ys, &indices).unwrap();
        assert_eq!(direct, indexed);
        assert_eq!(
            direct.predict(&[9.0, 2.0]).unwrap().to_bits(),
            indexed.predict(&[9.0, 2.0]).unwrap().to_bits()
        );
    }

    #[test]
    fn fit_prepared_matches_fit_indexed_bitwise() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, ((i * 3) % 11) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 0.7 * r[0] - 1.3 * r[1] + 4.0).collect();
        let indices: Vec<usize> = vec![3, 5, 8, 13, 21, 34, 1, 2];
        let p = 3;
        let mut design = Vec::new();
        let mut yseg = Vec::new();
        for &i in &indices {
            design.push(1.0);
            design.extend_from_slice(&xs[i]);
            yseg.push(ys[i]);
        }
        let indexed = LinearModel::fit_indexed(&xs, &ys, &indices).unwrap();
        let mut scratch = OlsScratch::default();
        // Twice through the same scratch: reuse must not perturb a bit.
        for _ in 0..2 {
            let prepared = LinearModel::fit_prepared(&design, &yseg, p, &mut scratch).unwrap();
            assert_eq!(prepared.intercept.to_bits(), indexed.intercept.to_bits());
            assert_eq!(prepared.coefficients.len(), indexed.coefficients.len());
            for (a, b) in prepared.coefficients.iter().zip(&indexed.coefficients) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(prepared.r_squared.to_bits(), indexed.r_squared.to_bits());
            assert_eq!(prepared.residual_std.to_bits(), indexed.residual_std.to_bits());
            assert_eq!(prepared.n_obs, indexed.n_obs);
        }
    }

    #[test]
    fn fit_prepared_validates() {
        let mut scratch = OlsScratch::default();
        assert!(matches!(
            LinearModel::fit_prepared(&[], &[], 2, &mut scratch),
            Err(StatsError::EmptyInput)
        ));
        assert!(matches!(
            LinearModel::fit_prepared(&[1.0, 2.0, 3.0], &[1.0], 2, &mut scratch),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LinearModel::fit_prepared(&[1.0, 2.0], &[1.0], 2, &mut scratch),
            Err(StatsError::TooShort { .. })
        ));
    }

    #[test]
    fn fit_indexed_validates() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert!(matches!(LinearModel::fit_indexed(&xs, &ys, &[]), Err(StatsError::EmptyInput)));
        assert!(matches!(
            LinearModel::fit_indexed(&xs, &ys[..4], &[0, 1]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            LinearModel::fit_indexed(&xs, &ys, &[0]),
            Err(StatsError::TooShort { .. })
        ));
    }

    #[test]
    fn predict_many_matches_predict() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] + 0.1 * r[1]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let batch = m.predict_many(&xs).unwrap();
        for (row, b) in xs.iter().zip(&batch) {
            assert_eq!(m.predict(row).unwrap(), *b);
        }
    }

    #[test]
    fn predict_many_into_matches_rowwise_bitwise() {
        let xs: Vec<Vec<f64>> =
            (0..12).map(|i| vec![i as f64 * 0.3, (i * i) as f64 * 0.01, (i % 3) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + r[0] - 2.0 * r[1] + 0.5 * r[2]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let mut out = vec![f64::NAN; 2]; // pre-existing contents are appended after
        m.predict_many_into(&flat, 3, &mut out).unwrap();
        assert_eq!(out.len(), 2 + xs.len());
        for (row, b) in xs.iter().zip(&out[2..]) {
            assert_eq!(m.predict(row).unwrap().to_bits(), b.to_bits());
        }
        // Batch-trait path agrees too.
        use crate::forecast::FittedModel;
        let batch = m.predict_batch(&xs).unwrap();
        for (a, b) in batch.iter().zip(&out[2..]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn predict_many_into_rejects_bad_shapes() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] + r[1]).collect();
        let m = LinearModel::fit(&xs, &ys).unwrap();
        let mut out = Vec::new();
        // Wrong width.
        assert!(matches!(
            m.predict_many_into(&[1.0, 2.0, 3.0], 3, &mut out),
            Err(StatsError::DimensionMismatch { .. })
        ));
        // Ragged flat buffer.
        assert!(matches!(
            m.predict_many_into(&[1.0, 2.0, 3.0], 2, &mut out),
            Err(StatsError::DimensionMismatch { .. })
        ));
        // Width 0 with data has no row count; empty width-0 input is a no-op.
        assert!(matches!(
            m.predict_many_into(&[1.0], 0, &mut out),
            Err(StatsError::DimensionMismatch { .. })
        ));
        let flat = LinearModel::fit(&vec![vec![]; 3], &[2.0, 2.0, 2.0]);
        if let Ok(intercept_only) = flat {
            let mut o = Vec::new();
            intercept_only.predict_many_into(&[], 0, &mut o).unwrap();
            assert!(o.is_empty());
        }
    }
}
