//! Time-series and regression substrate for the DDoS adversary-behavior models.
//!
//! This crate provides every statistical primitive the ICDCS 2017 reproduction
//! needs, implemented from scratch so the whole numeric stack stays auditable
//! and offline-safe:
//!
//! * [`matrix`] — small dense linear algebra (solve, Cholesky, QR) backing the
//!   regression fitters.
//! * [`ols`] — simple and multivariate ordinary-least-squares regression.
//! * [`acf`] — autocorrelation and partial autocorrelation functions.
//! * [`arima`] — autoregressive integrated moving-average models: differencing,
//!   conditional-sum-of-squares fitting, multi-step forecasting.
//! * [`select`] — information-criterion (AIC/BIC) order search for ARIMA.
//! * [`diagnostics`] — residual diagnostics (Ljung–Box portmanteau test).
//! * [`metrics`] — forecast-accuracy metrics (RMSE, MAE, MAPE, CV, …).
//! * [`distributions`] — seedable samplers (Poisson, log-normal, exponential,
//!   Pareto, categorical, diurnal cycles) used by the trace generator.
//! * [`smoothing`] — simple and Holt exponential smoothing (the
//!   middle-ground comparators between the naive baselines and ARIMA).
//! * [`exec`] — deterministic sharded parallel executor backing the
//!   model-fitting hot paths (same outputs at any thread count).
//! * [`forecast`] — the train/serve split: `Forecaster` (fit) and
//!   `FittedModel` (batched serve) traits shared by ARIMA, NAR and CART.
//! * [`codec`] — little-endian `to_bits` encoding primitives underlying
//!   the versioned model-artifact format.
//!
//! # Example
//!
//! Fit an AR(1) process and forecast one step ahead:
//!
//! ```
//! use ddos_stats::arima::{Arima, ArimaOrder};
//!
//! # fn main() -> Result<(), ddos_stats::StatsError> {
//! // A decaying AR(1)-ish series.
//! let series: Vec<f64> = (0..200).map(|i| (0.8f64).powi(i % 7) + (i as f64) * 0.001).collect();
//! let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0))?;
//! let forecast = model.forecast(1)?;
//! assert_eq!(forecast.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod arima;
pub mod codec;
pub mod diagnostics;
pub mod distributions;
pub mod exec;
pub mod forecast;
pub mod matrix;
pub mod metrics;
pub mod ols;
pub mod regress;
pub mod select;
pub mod smoothing;

mod error;

pub use error::StatsError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
