//! The train/serve split: the `Forecaster` trait family.
//!
//! The paper's three model classes — ARIMA (§IV), NAR (§V) and the CART
//! model tree (§VI) — were historically fit and queried in one pass.
//! This module names the two halves so pipelines can train once, persist
//! the fitted model, and predict many times:
//!
//! * [`Forecaster`] — the **fit** half. Implemented by lightweight
//!   *specifications* (an ARIMA order, a NAR config + seed, a tree
//!   config): `spec.fit(training_input)` yields the servable model.
//! * [`FittedModel`] — the **serve** half. Implemented by the fitted
//!   models themselves; `predict_batch` answers a whole batch of queries
//!   in one call, with a `predict_batch_into` variant writing into a
//!   caller-owned buffer so serving loops stay allocation-free.
//!
//! The query type is generic because the three families are queried
//! differently: an ARIMA model rolls over a held-out continuation of its
//! own training series (`[f64]`), a NAR model rolls over a continuation
//! of a *supplied* history ([`Rolling`]), and a regression tree scores a
//! batch of feature rows (`[Vec<f64>]`). What the trait pins down is the
//! contract: one `f64` prediction per query element, computed with
//! exactly the float operations of the corresponding scalar path — every
//! implementation in this workspace is bit-identical to its per-query
//! loop, which is what lets the batched kernels sit underneath the
//! goldencheck fingerprint gate unnoticed.

/// The fit half of the train/serve split.
///
/// `In` is the (borrowed, possibly unsized) training input: `[f64]` for
/// the series models, [`Design`] for row-based learners.
pub trait Forecaster<In: ?Sized> {
    /// The servable model produced by a successful fit.
    type Fitted;
    /// The fit-failure type of the implementing crate.
    type Error;

    /// Trains a model on `input` according to this specification.
    ///
    /// # Errors
    ///
    /// Implementation-specific: typically too-short inputs, non-finite
    /// values, or degenerate designs.
    fn fit(&self, input: &In) -> Result<Self::Fitted, Self::Error>;
}

/// The serve half of the train/serve split: batched prediction.
///
/// `Query` is the borrowed batch: each implementation documents its
/// shape and returns exactly one prediction per query element.
pub trait FittedModel<Query: ?Sized> {
    /// The serve-failure type of the implementing crate.
    type Error;

    /// Answers the whole batch, appending one prediction per query
    /// element to `out` (cleared first). Serving loops reuse one buffer
    /// across calls, keeping steady-state prediction allocation-free.
    ///
    /// # Errors
    ///
    /// Implementation-specific; on error `out`'s contents are
    /// unspecified.
    fn predict_batch_into(&self, queries: &Query, out: &mut Vec<f64>) -> Result<(), Self::Error>;

    /// Allocating convenience wrapper over
    /// [`FittedModel::predict_batch_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FittedModel::predict_batch_into`].
    fn predict_batch(&self, queries: &Query) -> Result<Vec<f64>, Self::Error> {
        let mut out = Vec::new();
        self.predict_batch_into(queries, &mut out)?;
        Ok(out)
    }
}

/// A rolling-prediction batch for series models that take the history
/// explicitly (NAR): predict `test[0]` from the tail of `history`, then
/// absorb the true `test[0]` and predict `test[1]`, and so on.
#[derive(Debug, Clone, Copy)]
pub struct Rolling<'a> {
    /// The observed series the model conditions on.
    pub history: &'a [f64],
    /// The held-out continuation; one prediction is produced per element.
    pub test: &'a [f64],
}

/// A borrowed regression design — the training input of row-based
/// forecasters (one feature row per observation, one target each).
#[derive(Debug, Clone, Copy)]
pub struct Design<'a> {
    /// Feature rows, all the same width.
    pub xs: &'a [Vec<f64>],
    /// Per-row regression targets, `ys.len() == xs.len()`.
    pub ys: &'a [f64],
}
