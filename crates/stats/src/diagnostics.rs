//! Residual diagnostics for fitted time-series models.
//!
//! After fitting a temporal model, the Box–Jenkins workflow checks that the
//! residuals are white noise; the Ljung–Box portmanteau test is the standard
//! instrument. The chi-square survival function it needs is implemented via
//! the regularized incomplete gamma function.

use crate::acf::acf;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Outcome of a Ljung–Box test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom used for the reference chi-square.
    pub dof: usize,
    /// Right-tail p-value; small values reject "residuals are white noise".
    pub p_value: f64,
}

impl LjungBox {
    /// Convenience: whether white noise is *not* rejected at the given
    /// significance level (i.e. the residuals look clean).
    pub fn looks_white(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Ljung–Box portmanteau test on a residual series with `lags` tested lags
/// and `fitted_params` estimated model parameters (subtracted from the
/// degrees of freedom).
///
/// # Errors
///
/// * [`StatsError::TooShort`] when the series cannot support `lags`.
/// * [`StatsError::InvalidParameter`] when `lags == 0` or
///   `lags <= fitted_params` (no degrees of freedom would remain).
///
/// # Example
///
/// ```
/// use rand::{Rng, SeedableRng};
/// # fn main() -> Result<(), ddos_stats::StatsError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let noise: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() - 0.5).collect();
/// let lb = ddos_stats::diagnostics::ljung_box(&noise, 10, 0)?;
/// assert!(lb.looks_white(0.01));
/// # Ok(())
/// # }
/// ```
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> Result<LjungBox> {
    if lags == 0 {
        return Err(StatsError::InvalidParameter {
            name: "lags",
            detail: "must test at least one lag".to_string(),
        });
    }
    if lags <= fitted_params {
        return Err(StatsError::InvalidParameter {
            name: "lags",
            detail: format!("lags ({lags}) must exceed fitted parameter count ({fitted_params})"),
        });
    }
    let n = residuals.len();
    let rho = acf(residuals, lags)?;
    let mut q = 0.0;
    for (k, r) in rho.iter().enumerate().skip(1) {
        q += r * r / (n - k) as f64;
    }
    q *= n as f64 * (n as f64 + 2.0);
    let dof = lags - fitted_params;
    let p_value = chi_square_sf(q, dof as f64);
    Ok(LjungBox { statistic: q, dof, p_value })
}

/// Right-tail probability of the chi-square distribution with `k` degrees
/// of freedom: `P(X > x)`.
///
/// Returns 1.0 for `x <= 0`.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - regularized_lower_gamma(k / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma function P(a, x), by series expansion
/// for `x < a + 1` and continued fraction otherwise (Numerical-Recipes
/// style `gammp`).
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-14 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Summary statistics of a residual series: mean, standard deviation and
/// the fraction of |residual| values exceeding two standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidualSummary {
    /// Mean residual (should be near zero for an unbiased model).
    pub mean: f64,
    /// Residual standard deviation.
    pub std_dev: f64,
    /// Fraction of residuals beyond ±2σ (≈0.05 for Gaussian residuals).
    pub outlier_fraction: f64,
}

/// Computes a [`ResidualSummary`].
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty series.
pub fn summarize_residuals(residuals: &[f64]) -> Result<ResidualSummary> {
    if residuals.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mean = crate::metrics::mean(residuals)?;
    let std_dev = crate::metrics::std_dev(residuals)?;
    let outliers = if std_dev > 0.0 {
        residuals.iter().filter(|r| (*r - mean).abs() > 2.0 * std_dev).count()
    } else {
        0
    };
    Ok(ResidualSummary {
        mean,
        std_dev,
        outlier_fraction: outliers as f64 / residuals.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn regularized_gamma_endpoints() {
        assert_eq!(regularized_lower_gamma(2.0, 0.0), 0.0);
        assert!((regularized_lower_gamma(1.0, 30.0) - 1.0).abs() < 1e-10);
        // P(1, x) = 1 - e^{-x}
        assert!((regularized_lower_gamma(1.0, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Chi-square with 1 dof: P(X > 3.841) ≈ 0.05
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 0.002);
        // 10 dof: P(X > 18.307) ≈ 0.05
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 0.002);
        assert_eq!(chi_square_sf(-1.0, 3.0), 1.0);
    }

    #[test]
    fn ljung_box_accepts_white_noise() {
        let mut rng = StdRng::seed_from_u64(21);
        let noise: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() - 0.5).collect();
        let lb = ljung_box(&noise, 12, 0).unwrap();
        assert!(lb.looks_white(0.01), "white noise rejected: p = {}", lb.p_value);
        assert_eq!(lb.dof, 12);
    }

    #[test]
    fn ljung_box_rejects_autocorrelated_series() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut x = vec![0.0f64; 2000];
        for t in 1..x.len() {
            x[t] = 0.8 * x[t - 1] + rng.gen::<f64>() - 0.5;
        }
        let lb = ljung_box(&x, 12, 0).unwrap();
        assert!(lb.p_value < 1e-6, "AR(1) should fail whiteness: p = {}", lb.p_value);
        assert!(!lb.looks_white(0.05));
    }

    #[test]
    fn ljung_box_validates_params() {
        let noise = vec![0.0, 1.0, 0.0, 1.0];
        assert!(ljung_box(&noise, 0, 0).is_err());
        assert!(ljung_box(&noise, 2, 2).is_err());
    }

    #[test]
    fn residual_summary_gaussianish() {
        let mut rng = StdRng::seed_from_u64(23);
        let resid: Vec<f64> =
            (0..5000).map(|_| crate::distributions::standard_normal(&mut rng)).collect();
        let s = summarize_residuals(&resid).unwrap();
        assert!(s.mean.abs() < 0.05);
        assert!((s.std_dev - 1.0).abs() < 0.05);
        assert!((s.outlier_fraction - 0.0455).abs() < 0.02);
    }

    #[test]
    fn residual_summary_constant() {
        let s = summarize_residuals(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.outlier_fraction, 0.0);
        assert!(summarize_residuals(&[]).is_err());
    }
}
