//! Forecast-accuracy and dispersion metrics.
//!
//! The paper reports RMSE for every prediction experiment (Figs. 1–4 and the
//! §VII-A baseline comparison) and the coefficient of variation for Table I.

use crate::{Result, StatsError};

/// Root-mean-square error between predictions and ground truth.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] when the slices are empty.
/// * [`StatsError::LengthMismatch`] when lengths differ.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ddos_stats::StatsError> {
/// let rmse = ddos_stats::metrics::rmse(&[1.0, 2.0], &[1.0, 4.0])?;
/// // Squared errors are 0 and 4, so the RMSE is sqrt(4 / 2) = sqrt(2).
/// assert!((rmse - (2.0f64).sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn rmse(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(predicted, actual)?;
    let n = predicted.len() as f64;
    let ss: f64 = predicted.iter().zip(actual).map(|(p, a)| (p - a).powi(2)).sum();
    Ok((ss / n).sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Same conditions as [`rmse`].
pub fn mae(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(predicted, actual)?;
    let n = predicted.len() as f64;
    Ok(predicted.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / n)
}

/// Mean absolute percentage error, in percent. Observations with a zero
/// actual value are skipped (they would divide by zero).
///
/// # Errors
///
/// Same conditions as [`rmse`], plus [`StatsError::EmptyInput`] when every
/// actual value is zero.
pub fn mape(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(predicted, actual)?;
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if *a != 0.0 {
            total += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        return Err(StatsError::EmptyInput);
    }
    Ok(100.0 * total / count as f64)
}

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn variance(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Sample variance (divides by `n − 1`).
///
/// # Errors
///
/// Returns [`StatsError::TooShort`] when fewer than two values are given.
pub fn sample_variance(values: &[f64]) -> Result<f64> {
    if values.len() < 2 {
        return Err(StatsError::TooShort { required: 2, actual: values.len() });
    }
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn std_dev(values: &[f64]) -> Result<f64> {
    Ok(variance(values)?.sqrt())
}

/// Coefficient of variation (relative standard deviation): σ / μ.
///
/// This is the CV column of the paper's Table I, measuring the stability of
/// a botnet family's daily activity level — lower means more stable.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] for an empty slice.
/// * [`StatsError::InvalidParameter`] when the mean is zero.
pub fn coefficient_of_variation(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    if m == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "values",
            detail: "mean is zero; CV undefined".to_string(),
        });
    }
    Ok(std_dev(values)? / m)
}

/// Median of a sample (averaging the two central order statistics for even
/// lengths). Input need not be sorted.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn median(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in median input"));
    let n = sorted.len();
    Ok(if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 })
}

/// Empirical quantile via linear interpolation, `q ∈ [0, 1]`.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] for an empty slice.
/// * [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            detail: format!("quantile must lie in [0, 1], got {q}"),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Pearson correlation coefficient.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] when lengths differ.
/// * [`StatsError::TooShort`] when fewer than two pairs are given.
/// * [`StatsError::InvalidParameter`] when either input is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 2 {
        return Err(StatsError::TooShort { required: 2, actual: x.len() });
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            detail: "constant input; correlation undefined".to_string(),
        });
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Builds an empirical histogram with `bins` equal-width buckets over
/// `[min, max]` of the data; returns `(bucket_edges, counts)`.
///
/// The paper's Figures 3–4 present prediction and error *distributions*;
/// this helper produces them.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] for an empty slice.
/// * [`StatsError::InvalidParameter`] when `bins == 0`.
pub fn histogram(values: &[f64], bins: usize) -> Result<(Vec<f64>, Vec<usize>)> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if bins == 0 {
        return Err(StatsError::InvalidParameter {
            name: "bins",
            detail: "bin count must be nonzero".to_string(),
        });
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = if hi > lo { (hi - lo) / bins as f64 } else { 1.0 };
    let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
    let mut counts = vec![0usize; bins];
    for v in values {
        let mut idx = ((v - lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1;
        }
        counts[idx] += 1;
    }
    Ok((edges, counts))
}

fn check_pair(a: &[f64], b: &[f64]) -> Result<()> {
    if a.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch { left: a.len(), right: b.len() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        assert_eq!(rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors: 1, -1 → RMSE = 1
        assert!((rmse(&[2.0, 1.0], &[1.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[2.0, 0.0], &[1.0, 2.0]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let m = mape(&[1.1, 5.0], &[1.0, 0.0]).unwrap();
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_all_zero_actuals_errors() {
        assert!(mape(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn mean_and_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v).unwrap(), 5.0);
        assert_eq!(variance(&v).unwrap(), 4.0);
        assert_eq!(std_dev(&v).unwrap(), 2.0);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let v = [1.0, 3.0];
        assert_eq!(sample_variance(&v).unwrap(), 2.0);
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn cv_matches_definition() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&v).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cv_rejects_zero_mean() {
        assert!(coefficient_of_variation(&[-1.0, 1.0]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&v, 0.5).unwrap(), 2.5);
        assert!(quantile(&v, 1.5).is_err());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg = [-2.0, -4.0, -6.0];
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn histogram_counts_everything() {
        let v = [0.0, 0.1, 0.2, 0.9, 1.0];
        let (edges, counts) = histogram(&v, 2).unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), v.len());
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 2);
    }

    #[test]
    fn histogram_constant_data() {
        let (_, counts) = histogram(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(rmse(&[], &[]).is_err());
        assert!(mean(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(histogram(&[], 3).is_err());
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(matches!(rmse(&[1.0], &[1.0, 2.0]), Err(StatsError::LengthMismatch { .. })));
    }
}
