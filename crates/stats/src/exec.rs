//! Deterministic sharded parallel executor.
//!
//! The model-fitting hot paths (per-family ARIMA fits, NAR grid search,
//! per-target-AS spatial fits) are embarrassingly parallel: every unit of
//! work owns an independent seed and touches no shared state. This module
//! gives them a *deterministic* fan-out: inputs are split into contiguous
//! shards, each shard runs on its own scoped thread, and every result is
//! written back into the slot matching its input index. Reduction then
//! happens in canonical (index) order, so a parallel run is byte-identical
//! to a serial run of the same seed — the thread count changes wall-clock
//! time, never output.
//!
//! Built on [`std::thread::scope`] only; no external dependencies. Worker
//! panics propagate to the caller when the scope joins.
//!
//! # Example
//!
//! ```
//! use ddos_stats::exec::map_indexed;
//!
//! let inputs = vec![1u64, 2, 3, 4, 5];
//! let serial = map_indexed(&inputs, Some(1), |i, x| x * 10 + i as u64);
//! let parallel = map_indexed(&inputs, Some(4), |i, x| x * 10 + i as u64);
//! assert_eq!(serial, parallel);
//! assert_eq!(serial, vec![10, 21, 32, 43, 54]);
//! ```

/// Resolves a requested worker count: `None` means "use every available
/// core", `Some(n)` is taken literally (with `Some(0)` clamped up to 1,
/// the serial case).
pub fn resolve_parallelism(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Maps `f` over `items` with up to `parallelism` worker threads
/// (`None` = all available cores), returning results in input order.
///
/// Determinism contract: `f` is called exactly once per item with that
/// item's index, and the output vector's slot `i` always holds
/// `f(i, &items[i])` — regardless of worker count or scheduling. Callers
/// that reduce the returned vector left-to-right therefore observe the
/// exact serial semantics.
///
/// Items are split into contiguous shards of near-equal size, one scoped
/// thread per shard. With one worker (or zero/one items) no threads are
/// spawned at all.
///
/// # Panics
///
/// Re-raises any panic from `f` when the thread scope joins.
pub fn map_indexed<T, R, F>(items: &[T], parallelism: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_with(items, parallelism, || (), |(), i, item| f(i, item))
}

/// [`map_indexed`] with per-shard mutable state: `init` runs once on each
/// worker thread (once total on the serial path) and the resulting state
/// is threaded through every call that shard makes, in shard order.
///
/// This is the scratch-arena hook: a shard's workspace buffers (weight
/// arenas, design matrices) are allocated once and reused across its
/// items instead of once per item. The determinism contract of
/// [`map_indexed`] carries over *provided* `f(state, i, item)` returns
/// the same value regardless of the incoming state — i.e. the state is
/// pure scratch whose contents are (re)initialized by `f` before use,
/// never data flowing between items. All in-repo scratch types
/// (`TrainScratch`, OLS scratch) satisfy this by construction, and the
/// grid-search determinism tests sweep worker counts to prove it: which
/// cells *share* an arena changes with the shard layout, so any leak
/// would break the bit-identity oracle.
///
/// # Panics
///
/// Re-raises any panic from `init` or `f` when the thread scope joins.
pub fn map_indexed_with<T, R, S, I, F>(
    items: &[T],
    parallelism: Option<usize>,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_parallelism(parallelism).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
    }

    let shard_len = n.div_ceil(workers);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        for (shard, (in_shard, out_shard)) in
            items.chunks(shard_len).zip(slots.chunks_mut(shard_len)).enumerate()
        {
            let f = &f;
            let init = &init;
            let base = shard * shard_len;
            scope.spawn(move || {
                let mut state = init();
                for (off, (item, slot)) in in_shard.iter().zip(out_shard.iter_mut()).enumerate() {
                    *slot = Some(f(&mut state, base + off, item));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every shard fills its contiguous slot range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x * 7);
        let serial = map_indexed(&items, Some(1), f);
        for workers in [2, 3, 4, 8, 97, 200] {
            assert_eq!(map_indexed(&items, Some(workers), f), serial, "workers={workers}");
        }
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = map_indexed(&items, Some(4), |i, x| {
            assert_eq!(i, *x);
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(map_indexed(&empty, Some(4), |_, x| *x).is_empty());
        assert_eq!(map_indexed(&[9u32], Some(4), |_, x| *x + 1), vec![10]);
    }

    #[test]
    fn fallible_work_reduces_in_order() {
        let items: Vec<i32> = vec![1, -2, 3, -4];
        let out =
            map_indexed(
                &items,
                Some(2),
                |_, x| {
                    if *x > 0 {
                        Ok(*x)
                    } else {
                        Err(format!("bad {x}"))
                    }
                },
            );
        // First error in canonical order is item 1, independent of scheduling.
        let first_err = out.into_iter().find_map(Result::err);
        assert_eq!(first_err.as_deref(), Some("bad -2"));
    }

    #[test]
    fn stateful_map_matches_stateless_at_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected = map_indexed(&items, Some(1), |i, x| x * 3 + i as u64);
        for workers in [1, 2, 4, 9, 37] {
            // Scratch contract: the state is reset before use, so results
            // must not depend on which items shared a shard's state.
            let out = map_indexed_with(&items, Some(workers), Vec::<u64>::new, |scratch, i, x| {
                scratch.clear();
                scratch.push(x * 3);
                scratch[0] + i as u64
            });
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn state_is_reused_within_a_shard() {
        let items: Vec<u32> = (0..10).collect();
        // Serial path: one state for all items, so the call counter keeps
        // climbing — proving the arena is genuinely shared, not rebuilt.
        let out = map_indexed_with(
            &items,
            Some(1),
            || 0usize,
            |calls, _, _| {
                *calls += 1;
                *calls
            },
        );
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_parallelism_contract() {
        assert_eq!(resolve_parallelism(Some(1)), 1);
        assert_eq!(resolve_parallelism(Some(0)), 1);
        assert_eq!(resolve_parallelism(Some(6)), 6);
        assert!(resolve_parallelism(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        map_indexed(&items, Some(2), |_, x| {
            if *x == 5 {
                panic!("worker panic propagates");
            }
            *x
        });
    }
}
