//! Exponential smoothing forecasters.
//!
//! Simple (SES) and trend-corrected (Holt) exponential smoothing sit
//! between the paper's Always-Mean straw man and the full ARIMA machinery:
//! they adapt to level shifts with two parameters and no model selection.
//! The ablation benches use them as a middle comparator, and
//! [`HoltModel::fit_auto`] tunes the smoothing constants by grid search on
//! one-step training error.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Simple exponential smoothing: `level ← α·x + (1 − α)·level`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SesModel {
    alpha: f64,
    level: f64,
}

impl SesModel {
    /// Fits (initializes and runs) SES over a series.
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] for an empty series.
    /// * [`StatsError::InvalidParameter`] for `α ∉ (0, 1]`.
    pub fn fit(series: &[f64], alpha: f64) -> Result<Self> {
        if series.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                detail: format!("must lie in (0, 1], got {alpha}"),
            });
        }
        let mut level = series[0];
        for x in &series[1..] {
            level = alpha * x + (1.0 - alpha) * level;
        }
        Ok(SesModel { alpha, level })
    }

    /// The current level (= the one-step forecast).
    pub fn forecast(&self) -> f64 {
        self.level
    }

    /// Absorbs one new observation and returns the *pre-update* forecast
    /// (the rolling-evaluation convention).
    pub fn update(&mut self, x: f64) -> f64 {
        let forecast = self.level;
        self.level = self.alpha * x + (1.0 - self.alpha) * self.level;
        forecast
    }

    /// Rolling one-step predictions over a test continuation.
    pub fn predict_rolling(&mut self, test: &[f64]) -> Vec<f64> {
        test.iter().map(|x| self.update(*x)).collect()
    }
}

/// Holt's linear (trend-corrected) exponential smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltModel {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
}

impl HoltModel {
    /// Fits Holt smoothing with the given constants.
    ///
    /// # Errors
    ///
    /// * [`StatsError::TooShort`] for fewer than two observations.
    /// * [`StatsError::InvalidParameter`] for constants outside `(0, 1]`.
    pub fn fit(series: &[f64], alpha: f64, beta: f64) -> Result<Self> {
        if series.len() < 2 {
            return Err(StatsError::TooShort { required: 2, actual: series.len() });
        }
        for (name, v) in [("alpha", alpha), ("beta", beta)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(StatsError::InvalidParameter {
                    name: if name == "alpha" { "alpha" } else { "beta" },
                    detail: format!("must lie in (0, 1], got {v}"),
                });
            }
        }
        let mut model = HoltModel { alpha, beta, level: series[0], trend: series[1] - series[0] };
        for x in &series[1..] {
            model.update(*x);
        }
        Ok(model)
    }

    /// Tunes `(α, β)` by one-step training SSE over a coarse grid and
    /// returns the best model.
    ///
    /// # Errors
    ///
    /// Propagates [`HoltModel::fit`] errors.
    pub fn fit_auto(series: &[f64]) -> Result<Self> {
        let grid = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8];
        let mut best: Option<(f64, Self)> = None;
        for &alpha in &grid {
            for &beta in &grid {
                // One-step SSE computed by replaying the series.
                if series.len() < 3 {
                    continue;
                }
                let mut m =
                    HoltModel { alpha, beta, level: series[0], trend: series[1] - series[0] };
                let mut sse = 0.0;
                for x in &series[1..] {
                    let f = m.update(*x);
                    sse += (f - x).powi(2);
                }
                if best.as_ref().is_none_or(|(s, _)| sse < *s) {
                    best = Some((sse, m));
                }
            }
        }
        match best {
            Some((_, m)) => Ok(m),
            None => HoltModel::fit(series, 0.2, 0.1),
        }
    }

    /// One-step forecast `level + trend`.
    pub fn forecast(&self) -> f64 {
        self.level + self.trend
    }

    /// Multi-step forecast `level + h·trend`.
    pub fn forecast_h(&self, h: usize) -> f64 {
        self.level + h as f64 * self.trend
    }

    /// Absorbs one observation and returns the pre-update forecast.
    pub fn update(&mut self, x: f64) -> f64 {
        let forecast = self.forecast();
        let prev_level = self.level;
        self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        forecast
    }

    /// Rolling one-step predictions over a test continuation.
    pub fn predict_rolling(&mut self, test: &[f64]) -> Vec<f64> {
        test.iter().map(|x| self.update(*x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ses_constant_series_is_exact() {
        let s = vec![5.0; 30];
        let m = SesModel::fit(&s, 0.3).unwrap();
        assert!((m.forecast() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ses_adapts_to_level_shift() {
        let mut s = vec![0.0; 30];
        s.extend(vec![10.0; 30]);
        let m = SesModel::fit(&s, 0.3).unwrap();
        assert!(m.forecast() > 9.0, "level {} did not adapt", m.forecast());
    }

    #[test]
    fn ses_validates() {
        assert!(SesModel::fit(&[], 0.3).is_err());
        assert!(SesModel::fit(&[1.0], 0.0).is_err());
        assert!(SesModel::fit(&[1.0], 1.5).is_err());
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let s: Vec<f64> = (0..60).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = HoltModel::fit(&s, 0.5, 0.3).unwrap();
        // Next value should be ≈ 3 + 2·60 = 123.
        assert!((m.forecast() - 123.0).abs() < 2.0, "forecast {}", m.forecast());
        assert!((m.forecast_h(3) - 127.0).abs() < 3.0);
    }

    #[test]
    fn holt_beats_ses_on_trending_data() {
        let train: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let test: Vec<f64> = (50..70).map(|i| i as f64).collect();
        let mut holt = HoltModel::fit(&train, 0.5, 0.3).unwrap();
        let mut ses = SesModel::fit(&train, 0.5).unwrap();
        let holt_sse: f64 =
            holt.predict_rolling(&test).iter().zip(&test).map(|(p, t)| (p - t).powi(2)).sum();
        let ses_sse: f64 =
            ses.predict_rolling(&test).iter().zip(&test).map(|(p, t)| (p - t).powi(2)).sum();
        assert!(holt_sse < ses_sse * 0.2, "holt {holt_sse} vs ses {ses_sse}");
    }

    #[test]
    fn fit_auto_selects_reasonable_constants() {
        // Noisy trend: auto-tuned Holt should do no worse than a poor
        // hand-picked configuration.
        let series: Vec<f64> = (0..80).map(|i| 0.5 * i as f64 + ((i * 7) % 5) as f64).collect();
        let (train, test) = series.split_at(60);
        let mut auto = HoltModel::fit_auto(train).unwrap();
        let mut poor = HoltModel::fit(train, 1.0, 1.0).unwrap();
        let sse = |p: Vec<f64>| -> f64 { p.iter().zip(test).map(|(a, b)| (a - b).powi(2)).sum() };
        let auto_sse = sse(auto.predict_rolling(test));
        let poor_sse = sse(poor.predict_rolling(test));
        assert!(auto_sse <= poor_sse * 1.2, "auto {auto_sse} vs poor {poor_sse}");
    }

    #[test]
    fn holt_validates() {
        assert!(HoltModel::fit(&[1.0], 0.5, 0.5).is_err());
        assert!(HoltModel::fit(&[1.0, 2.0], 0.0, 0.5).is_err());
        assert!(HoltModel::fit(&[1.0, 2.0], 0.5, 2.0).is_err());
    }

    #[test]
    fn update_returns_pre_update_forecast() {
        let mut m = SesModel::fit(&[4.0], 0.5).unwrap();
        let f = m.update(8.0);
        assert_eq!(f, 4.0);
        assert_eq!(m.forecast(), 6.0);
    }
}
