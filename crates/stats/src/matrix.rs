//! Small dense linear algebra used by the regression fitters.
//!
//! The models in this workspace only ever solve systems with a handful of
//! unknowns (ARIMA orders ≤ ~6, regression designs with ≤ ~20 columns), so a
//! simple row-major [`Matrix`] with partial-pivot LU, Cholesky and
//! Householder QR is both sufficient and easy to audit.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// # Example
///
/// ```
/// use ddos_stats::matrix::Matrix;
///
/// # fn main() -> Result<(), ddos_stats::StatsError> {
/// let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]])?;
/// let b = vec![1.0, 2.0];
/// let x = a.solve(&b)?;
/// let r = a.mat_vec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-10 && (r[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::InvalidParameter {
                name: "dims",
                detail: format!("dimensions must be nonzero, got {rows}x{cols}"),
            });
        }
        Ok(Matrix { rows, cols, data: vec![0.0; rows * cols] })
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `n` is zero.
    pub fn identity(n: usize) -> Result<Self> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `rows` is empty and
    /// [`StatsError::DimensionMismatch`] when rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(StatsError::DimensionMismatch {
                    detail: format!("row {i} has {} columns, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `data.len() != rows * cols`
    /// and [`StatsError::InvalidParameter`] when a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::InvalidParameter {
                name: "dims",
                detail: format!("dimensions must be nonzero, got {rows}x{cols}"),
            });
        }
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                detail: format!("buffer length {} != {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics when `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix { rows: self.cols, cols: self.rows, data: vec![0.0; self.data.len()] };
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                detail: format!("vector length {} != matrix cols {}", v.len(), self.cols),
            });
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on inner-dimension mismatch.
    pub fn mat_mul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Solves `self * x = b` using partial-pivot Gaussian elimination.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] when the matrix is not square or
    ///   `b` has the wrong length.
    /// * [`StatsError::SingularMatrix`] when a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                detail: format!("solve requires square matrix, got {}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(StatsError::DimensionMismatch {
                detail: format!("rhs length {} != {}", b.len(), self.rows),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting: find the largest-magnitude entry in this column.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(StatsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in (col + 1)..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x)
    }

    /// Cholesky factorization `self = L * Lᵀ` for a symmetric
    /// positive-definite matrix; returns the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] when the matrix is not square.
    /// * [`StatsError::SingularMatrix`] when the matrix is not positive
    ///   definite.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                detail: format!("cholesky requires square matrix, got {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 1e-12 {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self * x = b` via Cholesky, assuming `self` is symmetric
    /// positive definite (the normal-equations case).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::cholesky`]; additionally returns
    /// [`StatsError::DimensionMismatch`] for a wrong-length `b`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(StatsError::DimensionMismatch {
                detail: format!("rhs length {} != {}", b.len(), self.rows),
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }

    /// Householder QR factorization; returns `(Q, R)` with `Q` orthonormal
    /// (`rows × rows`) and `R` upper-trapezoidal (`rows × cols`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::TooShort`] when `rows < cols` (the regression
    /// use case requires at least as many observations as parameters).
    pub fn qr(&self) -> Result<(Matrix, Matrix)> {
        if self.rows < self.cols {
            return Err(StatsError::TooShort { required: self.cols, actual: self.rows });
        }
        let m = self.rows;
        let n = self.cols;
        let mut r = self.clone();
        let mut q = Matrix::identity(m)?;

        for k in 0..n.min(m - 1) {
            // Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-14 {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            v[k] = r[(k, k)] - alpha;
            for (i, vi) in v.iter_mut().enumerate().take(m).skip(k + 1) {
                *vi = r[(i, k)];
            }
            let vtv: f64 = v.iter().map(|x| x * x).sum();
            if vtv < 1e-28 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / (vᵀ v) to R (left) and accumulate into Q.
            for j in 0..n {
                let dot: f64 = (k..m).map(|i| v[i] * r[(i, j)]).sum();
                let c = 2.0 * dot / vtv;
                for i in k..m {
                    r[(i, j)] -= c * v[i];
                }
            }
            for j in 0..m {
                let dot: f64 = (k..m).map(|i| v[i] * q[(j, i)]).sum();
                let c = 2.0 * dot / vtv;
                for i in k..m {
                    q[(j, i)] -= c * v[i];
                }
            }
        }
        Ok((q, r))
    }

    /// Least-squares solution of `self * x ≈ b` via Householder QR.
    ///
    /// Works for overdetermined systems (`rows >= cols`). The reflections
    /// are applied to a copy of `b` directly — `Q` is never materialized,
    /// so the cost is `O(rows · cols²)` time and `O(rows · cols)` memory
    /// even for very tall designs (regression-tree leaves see tens of
    /// thousands of rows).
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] for a wrong-length `b`.
    /// * [`StatsError::TooShort`] when `rows < cols`.
    /// * [`StatsError::SingularMatrix`] when the design is rank deficient.
    pub fn lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        lstsq_into(&self.data, self.rows, self.cols, b, &mut LstsqScratch::default(), &mut x)?;
        Ok(x)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Gram matrix `selfᵀ * self` (used to form normal equations).
    pub fn gram(&self) -> Matrix {
        let mut g =
            Matrix { rows: self.cols, cols: self.cols, data: vec![0.0; self.cols * self.cols] };
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }
}

/// Reusable buffers for [`lstsq_into`]: the working copy of the design
/// (`r`), the transformed right-hand side (`rhs`), and the Householder
/// vector (`v`). A default-constructed scratch is valid for any problem
/// size; buffers grow on first use and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct LstsqScratch {
    r: Vec<f64>,
    rhs: Vec<f64>,
    v: Vec<f64>,
}

/// Allocation-free [`Matrix::lstsq`] over a borrowed row-major design.
///
/// `design` is `rows × cols` in row-major order; the solution is written
/// into `beta` (cleared and resized to `cols`). This is the same
/// Householder QR as [`Matrix::lstsq`] — which delegates here — with the
/// identical floating-point operation order, so results are bitwise equal.
/// The split exists for hot callers (regression-tree leaves) that solve
/// many small systems and want to amortize the three working buffers.
///
/// # Errors
///
/// Exactly those of [`Matrix::lstsq`]: [`StatsError::DimensionMismatch`]
/// for a wrong-length `b`, [`StatsError::TooShort`] when `rows < cols`,
/// [`StatsError::SingularMatrix`] on rank deficiency.
pub fn lstsq_into(
    design: &[f64],
    rows: usize,
    cols: usize,
    b: &[f64],
    scratch: &mut LstsqScratch,
    beta: &mut Vec<f64>,
) -> Result<()> {
    debug_assert_eq!(design.len(), rows * cols, "design buffer must be rows*cols");
    if b.len() != rows {
        return Err(StatsError::DimensionMismatch {
            detail: format!("rhs length {} != {}", b.len(), rows),
        });
    }
    if rows < cols {
        return Err(StatsError::TooShort { required: cols, actual: rows });
    }
    let m = rows;
    let n = cols;
    let r = &mut scratch.r;
    r.clear();
    r.extend_from_slice(design);
    let rhs = &mut scratch.rhs;
    rhs.clear();
    rhs.extend_from_slice(b);
    let v = &mut scratch.v;
    v.clear();
    v.resize(m, 0.0);

    for k in 0..n {
        // Householder vector for column k (rows k..m).
        let mut norm = 0.0;
        for (i, vi) in v.iter_mut().enumerate().take(m).skip(k) {
            *vi = r[i * n + k];
            norm += *vi * *vi;
        }
        let norm = norm.sqrt();
        if norm < 1e-14 {
            return Err(StatsError::SingularMatrix);
        }
        let alpha = if v[k] >= 0.0 { -norm } else { norm };
        v[k] -= alpha;
        let vtv: f64 = v[k..m].iter().map(|x| x * x).sum();
        if vtv < 1e-28 {
            return Err(StatsError::SingularMatrix);
        }
        // Apply H = I − 2 v vᵀ / (vᵀ v) to the remaining columns of R…
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i] * r[i * n + j]).sum();
            let c = 2.0 * dot / vtv;
            for i in k..m {
                r[i * n + j] -= c * v[i];
            }
        }
        // …and to the right-hand side.
        let dot: f64 = (k..m).map(|i| v[i] * rhs[i]).sum();
        let c = 2.0 * dot / vtv;
        for i in k..m {
            rhs[i] -= c * v[i];
        }
    }
    // Back substitution on the top n×n triangle.
    beta.clear();
    beta.resize(n, 0.0);
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in (i + 1)..n {
            s -= r[i * n + j] * beta[j];
        }
        let d = r[i * n + i];
        if d.abs() < 1e-10 {
            return Err(StatsError::SingularMatrix);
        }
        beta[i] = s / d;
    }
    Ok(())
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|a| a * s).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zeros_rejects_zero_dims() {
        assert!(Matrix::zeros(0, 4).is_err());
        assert!(Matrix::zeros(4, 0).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let i = Matrix::identity(3).unwrap();
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(i.mat_vec(&v).unwrap(), v);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mat_mul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn mat_mul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(a.mat_mul(&b).is_err());
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!(close(x[0], 0.8));
        assert!(close(x[1], 1.4));
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; naive elimination would fail.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!(close(x[0], 3.0));
        assert!(close(x[1], 2.0));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let l = a.cholesky().unwrap();
        let rec = l.mat_mul(&l.transpose()).unwrap();
        assert!((&rec - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn solve_spd_matches_solve() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0, 0.0], vec![1.0, 5.0, 2.0], vec![0.0, 2.0, 6.0]])
            .unwrap();
        let b = [1.0, -2.0, 3.0];
        let x1 = a.solve(&b).unwrap();
        let x2 = a.solve_spd(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!(close(*u, *v));
        }
    }

    #[test]
    fn qr_orthogonality_and_reconstruction() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let (q, r) = a.qr().unwrap();
        let qtq = q.transpose().mat_mul(&q).unwrap();
        let eye = Matrix::identity(3).unwrap();
        assert!((&qtq - &eye).frobenius_norm() < 1e-9);
        let rec = q.mat_mul(&r).unwrap();
        assert!((&rec - &a).frobenius_norm() < 1e-9);
    }

    #[test]
    fn lstsq_exact_fit() {
        // y = 1 + 2x, exactly representable.
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let beta = x.lstsq(&[1.0, 3.0, 5.0]).unwrap();
        assert!(close(beta[0], 1.0));
        assert!(close(beta[1], 2.0));
    }

    #[test]
    fn lstsq_overdetermined_minimizes() {
        // Noisy line; check the residual is orthogonal to the columns.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> =
            (0..10).map(|i| 2.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let beta = x.lstsq(&y).unwrap();
        let fitted = x.mat_vec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        for j in 0..2 {
            let dot: f64 = (0..10).map(|i| x[(i, j)] * resid[i]).sum();
            assert!(dot.abs() < 1e-8, "residual not orthogonal: {dot}");
        }
    }

    #[test]
    fn lstsq_detects_rank_deficiency() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert!(x.lstsq(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = x.gram();
        assert_eq!(g.rows(), 2);
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert_eq!(g[(0, 0)], 35.0);
    }

    #[test]
    fn operators_work() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn display_contains_entries() {
        let a = Matrix::from_rows(&[vec![1.5, 2.0]]).unwrap();
        let s = format!("{a}");
        assert!(s.contains("1.5"));
    }
}
