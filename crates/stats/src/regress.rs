//! Cheap regression baselines for the extended §VII-A comparison.
//!
//! The paper benchmarks its models against Always-Same and Always-Mean
//! (Table V); the DDoS-forecasting literature it cites (Gupta et al.)
//! also reports two slightly stronger quick predictors, reproduced here
//! so the forecaster-zoo RMSE table can place the tree ensembles against
//! the full cheap-baseline ladder:
//!
//! * [`PolynomialModel`] — per-feature power expansion (each feature `v`
//!   contributes `v, v², …, v^degree`) fit by ordinary least squares.
//! * [`HuberModel`] — a linear fit made robust to the heavy-tailed
//!   magnitude/duration targets by iteratively-reweighted least squares
//!   with the Huber ψ weight function.
//!
//! Both implement [`Forecaster`] over a borrowed [`Design`] and
//! [`FittedModel`] over feature-row batches, so they drop into the same
//! grid-search and evaluation harnesses as the CART family.

use crate::forecast::{Design, FittedModel, Forecaster};
use crate::matrix::Matrix;
use crate::ols::LinearModel;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Specification of a [`PolynomialModel`] fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolyConfig {
    /// Highest power each feature is raised to (`1` reduces to the plain
    /// linear model).
    pub degree: usize,
}

impl Default for PolyConfig {
    fn default() -> Self {
        PolyConfig { degree: 2 }
    }
}

/// A polynomial-expansion regression: OLS on the per-feature power basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialModel {
    /// Expansion degree actually used per feature (see
    /// [`PolynomialModel::fit`] for the distinct-value cap).
    degrees: Vec<usize>,
    inner: LinearModel,
}

/// Appends the per-feature power expansion of one row to `out`
/// (feature-major: `x₀, x₀², …, x₁, x₁², …`, each feature up to its own
/// degree).
fn expand_row_into(row: &[f64], degrees: &[usize], out: &mut Vec<f64>) {
    for (&v, &degree) in row.iter().zip(degrees) {
        let mut pow = v;
        out.push(pow);
        for _ in 1..degree {
            pow *= v;
            out.push(pow);
        }
    }
}

impl PolynomialModel {
    /// Fits the degree-`config.degree` expansion by OLS.
    ///
    /// A feature taking `k` distinct training values is capped at degree
    /// `k - 1` (floored at 1): on a binary (indicator) feature every
    /// power equals the feature itself, so expanding it would only make
    /// the design collinear — the cap keeps categorical columns of the
    /// spatiotemporal design (Table II has several) at degree 1 instead
    /// of failing the whole fit with a singular matrix.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] for `degree == 0`, plus
    /// everything [`LinearModel::fit`] reports on the expanded design
    /// (notably [`StatsError::SingularMatrix`] when the expansion is
    /// still collinear).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &PolyConfig) -> Result<Self> {
        if config.degree == 0 {
            return Err(StatsError::InvalidParameter {
                name: "degree",
                detail: "polynomial degree must be at least 1".to_string(),
            });
        }
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n_features = xs[0].len();
        let degrees: Vec<usize> = (0..n_features)
            .map(|f| {
                // Count distinct values, early-exiting once the cap can't
                // bind any more.
                let mut seen: Vec<f64> = Vec::with_capacity(config.degree + 1);
                for row in xs {
                    let v = row.get(f).copied().unwrap_or(f64::NAN);
                    if !seen.contains(&v) {
                        seen.push(v);
                        if seen.len() > config.degree {
                            break;
                        }
                    }
                }
                config.degree.min(seen.len().saturating_sub(1)).max(1)
            })
            .collect();
        let expanded: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                let mut e = Vec::with_capacity(degrees.iter().sum());
                expand_row_into(row, &degrees, &mut e);
                e
            })
            .collect();
        let inner = LinearModel::fit(&expanded, ys)?;
        Ok(PolynomialModel { degrees, inner })
    }

    /// Expansion degree actually used per feature (the configured degree
    /// capped by each feature's distinct-value count).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Width of the raw (unexpanded) feature rows.
    pub fn n_features(&self) -> usize {
        self.degrees.len()
    }

    /// Predicts the response for one raw feature row.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] on a wrong-width row.
    pub fn predict(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.degrees.len() {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "input has {} features, model expects {}",
                    x.len(),
                    self.degrees.len()
                ),
            });
        }
        let mut expanded = Vec::with_capacity(self.degrees.iter().sum());
        expand_row_into(x, &self.degrees, &mut expanded);
        self.inner.predict(&expanded)
    }
}

/// Specification of a [`HuberModel`] fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HuberConfig {
    /// Huber threshold in robust-scale units (1.345 gives 95% Gaussian
    /// efficiency, the textbook default).
    pub delta: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the coefficient max-change.
    pub tol: f64,
}

impl Default for HuberConfig {
    fn default() -> Self {
        HuberConfig { delta: 1.345, max_iter: 30, tol: 1e-8 }
    }
}

/// A Huber-robust linear regression fit by IRLS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuberModel {
    intercept: f64,
    coefficients: Vec<f64>,
    /// IRLS iterations actually run (0 = the OLS start already converged).
    n_iter: usize,
}

/// Median of a scratch copy of `vals` (mean of the middle pair for even
/// lengths). `vals` must be nonempty.
fn median_scratch(vals: &mut [f64]) -> f64 {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        0.5 * (vals[n / 2 - 1] + vals[n / 2])
    }
}

impl HuberModel {
    /// Fits by iteratively-reweighted least squares: an OLS start, then
    /// weighted refits with Huber weights `min(1, δ·s / |r|)` where `s`
    /// is the MAD robust scale of the current residuals, until the
    /// coefficients move less than `tol` or `max_iter` is hit.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] for a non-positive (or NaN)
    /// `delta` or `tol`, or zero `max_iter`; otherwise the
    /// [`LinearModel::fit`] conditions on the initial design.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &HuberConfig) -> Result<Self> {
        let positive = |v: f64| v > 0.0 && v.is_finite();
        if !positive(config.delta) || !positive(config.tol) {
            return Err(StatsError::InvalidParameter {
                name: "delta",
                detail: "huber delta and tol must be positive".to_string(),
            });
        }
        if config.max_iter == 0 {
            return Err(StatsError::InvalidParameter {
                name: "max_iter",
                detail: "huber max_iter must be at least 1".to_string(),
            });
        }
        let start = LinearModel::fit(xs, ys)?;
        let k = xs[0].len();
        let p = k + 1;
        let n = xs.len();
        let mut intercept = start.intercept();
        let mut coefficients = start.coefficients().to_vec();

        let mut resid = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        let mut target = Vec::with_capacity(n);
        let mut n_iter = 0;
        for _ in 0..config.max_iter {
            for (i, row) in xs.iter().enumerate() {
                let pred =
                    intercept + coefficients.iter().zip(row).map(|(b, v)| b * v).sum::<f64>();
                resid[i] = ys[i] - pred;
            }
            for (s, r) in scratch.iter_mut().zip(resid.iter()) {
                *s = r.abs();
            }
            // 1.4826 · MAD estimates σ consistently under Gaussian noise.
            let scale = 1.4826 * median_scratch(&mut scratch);
            if scale < 1e-12 {
                // (Near-)interpolating fit: every residual is essentially
                // zero and reweighting is ill-defined; the current
                // coefficients are already as robust as they get.
                break;
            }
            let cut = config.delta * scale;
            let mut data = Vec::with_capacity(n * p);
            target.clear();
            for (row, (&y, &r)) in xs.iter().zip(ys.iter().zip(resid.iter())) {
                let w = if r.abs() <= cut { 1.0 } else { cut / r.abs() };
                let sw = w.sqrt();
                data.push(sw);
                for &v in row {
                    data.push(sw * v);
                }
                target.push(sw * y);
            }
            let design = Matrix::from_vec(n, p, data)?;
            let beta = design.lstsq(&target)?;
            n_iter += 1;
            let step = (intercept - beta[0]).abs().max(
                coefficients
                    .iter()
                    .zip(&beta[1..])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max),
            );
            intercept = beta[0];
            coefficients = beta[1..].to_vec();
            if step <= config.tol {
                break;
            }
        }
        Ok(HuberModel { intercept, coefficients, n_iter })
    }

    /// The robust intercept β₀.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The robust slope coefficients β₁..βₖ.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// IRLS iterations run before convergence (or the cap).
    pub fn n_iter(&self) -> usize {
        self.n_iter
    }

    /// Predicts the response for one feature row.
    ///
    /// # Errors
    ///
    /// [`StatsError::DimensionMismatch`] on a wrong-width row.
    pub fn predict(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                detail: format!(
                    "input has {} regressors, model expects {}",
                    x.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(self.intercept + self.coefficients.iter().zip(x).map(|(b, v)| b * v).sum::<f64>())
    }
}

impl<'a> Forecaster<Design<'a>> for PolyConfig {
    type Fitted = PolynomialModel;
    type Error = StatsError;

    fn fit(&self, input: &Design<'a>) -> Result<PolynomialModel> {
        PolynomialModel::fit(input.xs, input.ys, self)
    }
}

impl FittedModel<[Vec<f64>]> for PolynomialModel {
    type Error = StatsError;

    /// Batched polynomial prediction: all rows are expanded into one flat
    /// buffer and scored through the allocation-free
    /// [`LinearModel::predict_many_into`] kernel — bit-identical to the
    /// per-row [`PolynomialModel::predict`] loop.
    fn predict_batch_into(&self, queries: &[Vec<f64>], out: &mut Vec<f64>) -> Result<()> {
        for q in queries {
            if q.len() != self.degrees.len() {
                return Err(StatsError::DimensionMismatch {
                    detail: format!(
                        "input has {} features, model expects {}",
                        q.len(),
                        self.degrees.len()
                    ),
                });
            }
        }
        let width: usize = self.degrees.iter().sum();
        let mut flat = Vec::with_capacity(queries.len() * width);
        for q in queries {
            expand_row_into(q, &self.degrees, &mut flat);
        }
        out.clear();
        self.inner.predict_many_into(&flat, width, out)
    }
}

impl<'a> Forecaster<Design<'a>> for HuberConfig {
    type Fitted = HuberModel;
    type Error = StatsError;

    fn fit(&self, input: &Design<'a>) -> Result<HuberModel> {
        HuberModel::fit(input.xs, input.ys, self)
    }
}

impl FittedModel<[Vec<f64>]> for HuberModel {
    type Error = StatsError;

    fn predict_batch_into(&self, queries: &[Vec<f64>], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.reserve(queries.len());
        for q in queries {
            out.push(self.predict(q)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_design() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> =
            (0..40).map(|i| vec![i as f64 * 0.25 - 5.0, (i % 7) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 + r[0] * r[0] - 0.5 * r[1]).collect();
        (xs, ys)
    }

    #[test]
    fn polynomial_recovers_quadratic_exactly() {
        let (xs, ys) = quadratic_design();
        let model = PolynomialModel::fit(&xs, &ys, &PolyConfig { degree: 2 }).unwrap();
        for (row, y) in xs.iter().zip(&ys) {
            assert!((model.predict(row).unwrap() - y).abs() < 1e-6);
        }
        // Degree 1 cannot represent the square term.
        let linear = PolynomialModel::fit(&xs, &ys, &PolyConfig { degree: 1 }).unwrap();
        let worst = xs
            .iter()
            .zip(&ys)
            .map(|(row, y)| (linear.predict(row).unwrap() - y).abs())
            .fold(0.0_f64, f64::max);
        assert!(worst > 1.0);
    }

    #[test]
    fn polynomial_batch_matches_scalar_bitwise() {
        let (xs, ys) = quadratic_design();
        let model = PolynomialModel::fit(&xs, &ys, &PolyConfig::default()).unwrap();
        let batch = model.predict_batch(&xs).unwrap();
        for (row, b) in xs.iter().zip(&batch) {
            assert_eq!(model.predict(row).unwrap().to_bits(), b.to_bits());
        }
    }

    #[test]
    fn polynomial_rejects_degenerate_inputs() {
        let (xs, ys) = quadratic_design();
        assert!(matches!(
            PolynomialModel::fit(&xs, &ys, &PolyConfig { degree: 0 }),
            Err(StatsError::InvalidParameter { .. })
        ));
        let model = PolynomialModel::fit(&xs, &ys, &PolyConfig::default()).unwrap();
        assert!(matches!(model.predict(&[1.0]), Err(StatsError::DimensionMismatch { .. })));
    }

    #[test]
    fn huber_shrugs_off_outliers_that_wreck_ols() {
        // Clean line plus a handful of gross magnitude outliers (the
        // heavy-tailed shape of attack magnitudes).
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let mut ys: Vec<f64> = xs.iter().map(|r| 1.0 + 3.0 * r[0]).collect();
        for i in [5_usize, 23, 41] {
            ys[i] += 500.0;
        }
        let huber = HuberModel::fit(&xs, &ys, &HuberConfig::default()).unwrap();
        let ols = LinearModel::fit(&xs, &ys).unwrap();
        assert!((huber.coefficients()[0] - 3.0).abs() < 0.1, "{:?}", huber);
        assert!((ols.coefficients()[0] - 3.0).abs() > 0.5);
        assert!(huber.n_iter() >= 1);
    }

    #[test]
    fn huber_on_clean_data_matches_ols_closely() {
        let xs: Vec<Vec<f64>> =
            (0..50).map(|i| vec![i as f64 * 0.2, (i % 5) as f64 - 2.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 0.5 + 2.0 * r[0] - 1.5 * r[1]).collect();
        let huber = HuberModel::fit(&xs, &ys, &HuberConfig::default()).unwrap();
        assert!((huber.intercept() - 0.5).abs() < 1e-6);
        assert!((huber.coefficients()[0] - 2.0).abs() < 1e-6);
        assert!((huber.coefficients()[1] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn huber_validates_config() {
        let (xs, ys) = quadratic_design();
        for bad in [
            HuberConfig { delta: 0.0, ..Default::default() },
            HuberConfig { tol: -1.0, ..Default::default() },
            HuberConfig { max_iter: 0, ..Default::default() },
        ] {
            assert!(matches!(
                HuberModel::fit(&xs, &ys, &bad),
                Err(StatsError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn forecaster_trait_round_trip() {
        let (xs, ys) = quadratic_design();
        let design = Design { xs: &xs, ys: &ys };
        let poly = PolyConfig::default().fit(&design).unwrap();
        let huber = HuberConfig::default().fit(&design).unwrap();
        assert_eq!(poly.predict_batch(&xs).unwrap().len(), xs.len());
        let hb = huber.predict_batch(&xs).unwrap();
        for (row, b) in xs.iter().zip(&hb) {
            assert_eq!(huber.predict(row).unwrap().to_bits(), b.to_bits());
        }
    }
}
