//! Trace-generator invariants across seeds and configurations.

use ddos_trace::time::DAY;
use ddos_trace::{CorpusConfig, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Structural invariants hold for every seed: chronological order,
    /// dense ids, consistent snapshots, duration bounds, multistage band,
    /// bots resolvable through the IP map.
    #[test]
    fn corpus_invariants(seed in 0u64..10_000) {
        let corpus = TraceGenerator::new(CorpusConfig::small(), seed).generate().unwrap();
        let attacks = corpus.attacks();
        prop_assert!(!attacks.is_empty());

        for (i, w) in attacks.windows(2).enumerate() {
            prop_assert!(w[0].start <= w[1].start, "disorder at {i}");
        }
        for (i, a) in attacks.iter().enumerate() {
            prop_assert_eq!(a.id.0, i as u64);
            prop_assert!(a.is_consistent());
            prop_assert!(a.duration_secs >= 30 && a.duration_secs <= 3 * DAY);
            prop_assert!(a.magnitude() >= 3);
        }

        // Multistage attacks have a same-target predecessor in the band.
        let mut per_family: std::collections::HashMap<_, Vec<&ddos_trace::AttackRecord>> =
            Default::default();
        for a in attacks {
            per_family.entry(a.family).or_default().push(a);
        }
        for fam_attacks in per_family.values() {
            for (i, a) in fam_attacks.iter().enumerate() {
                if a.multistage {
                    let ok = fam_attacks[..i].iter().rev().any(|p| {
                        p.target == a.target && {
                            let gap = a.start.abs_diff(p.start);
                            (30..DAY).contains(&gap)
                        }
                    });
                    prop_assert!(ok, "{} multistage without band-mate", a.id);
                }
            }
        }

        // IP map agreement on a sample.
        for a in attacks.iter().take(20) {
            for b in a.bots() {
                prop_assert_eq!(corpus.ip_map().lookup(b.ip), Some(b.asn));
            }
        }
    }

    /// The 80/20 split always partitions chronologically, for any split
    /// fraction in a reasonable range.
    #[test]
    fn split_partitions_chronologically(seed in 0u64..1000, frac in 0.5f64..0.95) {
        let corpus = TraceGenerator::new(CorpusConfig::small(), seed).generate().unwrap();
        let (train, test) = corpus.split(frac).unwrap();
        prop_assert_eq!(train.len() + test.len(), corpus.len());
        prop_assert!(!train.is_empty() && !test.is_empty());
        prop_assert!(train.last().unwrap().start <= test.first().unwrap().start);
    }
}
