//! Property tests for streaming generation and the columnar format.
//!
//! The load-bearing claims: a [`CorpusStream`] is bit-identical to the
//! in-RAM partitioned corpus at *any* worker count, chunk size and seed;
//! and the columnar reader turns every corruption — any truncation
//! prefix, any flipped byte — into a typed error, never a panic or a
//! silently different corpus.

use ddos_trace::stream::{CorpusStream, StreamOptions};
use ddos_trace::{
    AttackRecord, ColumnarReader, ColumnarWriter, CorpusConfig, ScenarioPolicy, TraceError,
    TraceGenerator,
};
use proptest::prelude::*;

fn streamed(seed: u64, chunk_days: u32, parallelism: Option<usize>) -> Vec<AttackRecord> {
    let opts = StreamOptions { chunk_days, parallelism };
    CorpusStream::with_options(CorpusConfig::small(), seed, opts)
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap()
}

fn encoded(seed: u64, rows_per_group: usize) -> Vec<u8> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), seed).generate_partitioned().unwrap();
    let mut w = ColumnarWriter::with_group_size(Vec::new(), rows_per_group).unwrap();
    for a in corpus.attacks() {
        w.push(a.clone()).unwrap();
    }
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Stream ≡ in-RAM partitioned corpus, bit for bit, regardless of
    /// worker count and chunk size.
    #[test]
    fn stream_equals_corpus_for_any_execution_shape(
        seed in 0u64..10_000,
        chunk_idx in 0usize..4,
        par_idx in 0usize..4,
    ) {
        let chunk_days = [1u32, 7, 64, 200][chunk_idx];
        let parallelism = [None, Some(1), Some(2), Some(4)][par_idx];
        let corpus =
            TraceGenerator::new(CorpusConfig::small(), seed).generate_partitioned().unwrap();
        let run = streamed(seed, chunk_days, parallelism);
        prop_assert_eq!(run.len(), corpus.len());
        for (s, c) in run.iter().zip(corpus.attacks()) {
            prop_assert_eq!(s, c);
        }
    }

    /// The invariant above survives the adversary layer: under *every*
    /// scenario policy the regime-switching stream is still bit-identical
    /// to the in-RAM partitioned corpus at any worker count and chunk
    /// size, because regime schedules are precomputed and looked up by
    /// plan day rather than threaded through the chunking loop.
    #[test]
    fn scenario_stream_equals_corpus_for_any_execution_shape(
        seed in 0u64..10_000,
        chunk_idx in 0usize..3,
        par_idx in 0usize..4,
        policy_idx in 0usize..ScenarioPolicy::ALL.len(),
    ) {
        let chunk_days = [1u32, 7, 64][chunk_idx];
        let parallelism = [None, Some(1), Some(2), Some(4)][par_idx];
        let config = CorpusConfig::small().with_scenario(ScenarioPolicy::ALL[policy_idx]);
        let corpus =
            TraceGenerator::new(config.clone(), seed).generate_partitioned().unwrap();
        let opts = StreamOptions { chunk_days, parallelism };
        let run: Vec<AttackRecord> = CorpusStream::with_options(config, seed, opts)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(run.len(), corpus.len());
        for (s, c) in run.iter().zip(corpus.attacks()) {
            prop_assert_eq!(s, c);
        }
    }

    /// Columnar encode → decode is the identity on the record sequence.
    #[test]
    fn columnar_round_trip(seed in 0u64..1_000, group in 1usize..500) {
        let corpus =
            TraceGenerator::new(CorpusConfig::small(), seed).generate_partitioned().unwrap();
        let bytes = encoded(seed, group);
        let decoded: Vec<AttackRecord> = ColumnarReader::new(&bytes[..])
            .unwrap()
            .into_records()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(decoded.as_slice(), corpus.attacks());
    }

    /// Every proper prefix of a columnar file fails to decode with a
    /// typed error (no panic, no silent short read).
    #[test]
    fn every_truncation_prefix_is_rejected(cut_seed in 0u64..u64::MAX) {
        let bytes = encoded(77, 64);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let outcome: Result<Vec<AttackRecord>, TraceError> = ColumnarReader::new(&bytes[..cut])
            .and_then(|r| r.into_records().collect());
        prop_assert!(outcome.is_err(), "prefix of {} bytes decoded", cut);
    }

    /// Any single flipped byte is detected: decoding either errors or —
    /// never — yields the original records with a clean completion.
    #[test]
    fn any_byte_flip_is_detected(pos_seed in 0u64..u64::MAX, flip in 1u8..=255) {
        let bytes = encoded(78, 64);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;
        let outcome: Result<Vec<AttackRecord>, TraceError> = ColumnarReader::new(&corrupt[..])
            .and_then(|r| r.into_records().collect());
        // The checksum covers every group payload and the envelope is
        // length-checked, so a flip anywhere must surface as an error.
        prop_assert!(outcome.is_err(), "flip {:#x} at byte {} went undetected", flip, pos);
    }
}

/// Every non-stationary policy must actually perturb the corpus: if a
/// regime switch produced bytes identical to the stationary run, the
/// drift harness would be measuring nothing.
#[test]
fn non_stationary_policies_diverge_from_stationary() {
    let base = TraceGenerator::new(CorpusConfig::small(), 42).generate_partitioned().unwrap();
    for policy in ScenarioPolicy::ALL {
        let config = CorpusConfig::small().with_scenario(policy);
        let run = TraceGenerator::new(config, 42).generate_partitioned().unwrap();
        let same = run.len() == base.len()
            && run.attacks().iter().zip(base.attacks()).all(|(a, b)| a == b);
        if policy.is_stationary() {
            assert!(same, "stationary policy must be a byte-identical no-op");
        } else {
            assert!(!same, "{policy} left the corpus unchanged");
        }
    }
}
