use std::error::Error;
use std::fmt;

/// Error type for trace generation and corpus manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// Generator or corpus configuration is invalid.
    InvalidConfig {
        /// Description of the violation.
        detail: String,
    },
    /// An operation referenced an unknown botnet family.
    UnknownFamily(crate::family::FamilyId),
    /// An operation referenced an unknown target.
    UnknownTarget(crate::targets::TargetId),
    /// The corpus is empty where data was required.
    EmptyCorpus,
    /// A split fraction was outside (0, 1).
    BadSplit(f64),
    /// An underlying topology operation failed.
    Topology(ddos_astopo::TopoError),
    /// An underlying statistical operation failed.
    Stats(ddos_stats::StatsError),
    /// A CSV field failed validation. `row` is the 0-based data-row
    /// index (excluding the header), `column` the schema column name.
    CsvField {
        /// 0-based data-row index.
        row: usize,
        /// Schema column name.
        column: &'static str,
        /// What was wrong with the value.
        detail: String,
    },
    /// A columnar trace file failed structural decoding.
    Codec(ddos_stats::codec::CodecError),
    /// A columnar trace file envelope was malformed (bad magic, version,
    /// checksum, or section framing).
    Format {
        /// Description of the malformation.
        detail: String,
    },
    /// An I/O failure, rendered to text so the error stays `Clone`.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidConfig { detail } => write!(f, "invalid trace config: {detail}"),
            TraceError::UnknownFamily(id) => write!(f, "unknown botnet family {id}"),
            TraceError::UnknownTarget(id) => write!(f, "unknown target {id}"),
            TraceError::EmptyCorpus => write!(f, "corpus contains no attacks"),
            TraceError::BadSplit(frac) => {
                write!(f, "split fraction {frac} must lie strictly between 0 and 1")
            }
            TraceError::Topology(e) => write!(f, "topology error: {e}"),
            TraceError::Stats(e) => write!(f, "stats error: {e}"),
            TraceError::CsvField { row, column, detail } => {
                write!(f, "CSV row {row}, column {column}: {detail}")
            }
            TraceError::Codec(e) => write!(f, "trace decoding error: {e}"),
            TraceError::Format { detail } => write!(f, "malformed trace file: {detail}"),
            TraceError::Io(detail) => write!(f, "I/O error: {detail}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Topology(e) => Some(e),
            TraceError::Stats(e) => Some(e),
            TraceError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ddos_stats::codec::CodecError> for TraceError {
    fn from(e: ddos_stats::codec::CodecError) -> Self {
        TraceError::Codec(e)
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

impl From<ddos_astopo::TopoError> for TraceError {
    fn from(e: ddos_astopo::TopoError) -> Self {
        TraceError::Topology(e)
    }
}

impl From<ddos_stats::StatsError> for TraceError {
    fn from(e: ddos_stats::StatsError) -> Self {
        TraceError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TraceError::EmptyCorpus.to_string().contains("no attacks"));
        assert!(TraceError::BadSplit(1.5).to_string().contains("1.5"));
    }

    #[test]
    fn source_chains() {
        let e = TraceError::Stats(ddos_stats::StatsError::EmptyInput);
        assert!(e.source().is_some());
        assert!(TraceError::EmptyCorpus.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
