use std::error::Error;
use std::fmt;

/// Error type for trace generation and corpus manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// Generator or corpus configuration is invalid.
    InvalidConfig {
        /// Description of the violation.
        detail: String,
    },
    /// An operation referenced an unknown botnet family.
    UnknownFamily(crate::family::FamilyId),
    /// An operation referenced an unknown target.
    UnknownTarget(crate::targets::TargetId),
    /// The corpus is empty where data was required.
    EmptyCorpus,
    /// A split fraction was outside (0, 1).
    BadSplit(f64),
    /// An underlying topology operation failed.
    Topology(ddos_astopo::TopoError),
    /// An underlying statistical operation failed.
    Stats(ddos_stats::StatsError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidConfig { detail } => write!(f, "invalid trace config: {detail}"),
            TraceError::UnknownFamily(id) => write!(f, "unknown botnet family {id}"),
            TraceError::UnknownTarget(id) => write!(f, "unknown target {id}"),
            TraceError::EmptyCorpus => write!(f, "corpus contains no attacks"),
            TraceError::BadSplit(frac) => {
                write!(f, "split fraction {frac} must lie strictly between 0 and 1")
            }
            TraceError::Topology(e) => write!(f, "topology error: {e}"),
            TraceError::Stats(e) => write!(f, "stats error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Topology(e) => Some(e),
            TraceError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ddos_astopo::TopoError> for TraceError {
    fn from(e: ddos_astopo::TopoError) -> Self {
        TraceError::Topology(e)
    }
}

impl From<ddos_stats::StatsError> for TraceError {
    fn from(e: ddos_stats::StatsError) -> Self {
        TraceError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TraceError::EmptyCorpus.to_string().contains("no attacks"));
        assert!(TraceError::BadSplit(1.5).to_string().contains("1.5"));
    }

    #[test]
    fn source_chains() {
        let e = TraceError::Stats(ddos_stats::StatsError::EmptyInput);
        assert!(e.source().is_some());
        assert!(TraceError::EmptyCorpus.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
