//! The target population: the services botnets attack.
//!
//! Targets live in stub ASes of the synthetic Internet. Families select
//! targets through a family-specific Zipf preference ("it is common for
//! botnet families to have … target preferences", §II-B), which is what
//! makes per-target and per-target-AS histories predictable for the
//! spatial and spatiotemporal models.

use crate::{Result, TraceError};
use ddos_astopo::graph::{AsGraph, Tier};
use ddos_astopo::ipmap::Prefix;
use ddos_astopo::Asn;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a target service.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TargetId(pub u32);

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target#{}", self.0)
    }
}

/// A single attackable service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Target {
    /// Identifier.
    pub id: TargetId,
    /// Service IPv4 address.
    pub ip: u32,
    /// Hosting AS.
    pub asn: Asn,
}

/// The full population of targets, spread across stub ASes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetPopulation {
    targets: Vec<Target>,
    by_asn: BTreeMap<Asn, Vec<TargetId>>,
}

impl TargetPopulation {
    /// Spreads `n` targets across the stub ASes of `graph`, round-robin,
    /// assigning each an address inside its AS's allocated prefix.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] when `n == 0`, the graph has
    /// no stubs, or an AS lacks a prefix allocation.
    pub fn spread<R: Rng + ?Sized>(
        graph: &AsGraph,
        allocations: &BTreeMap<Asn, Vec<Prefix>>,
        n: u32,
        rng: &mut R,
    ) -> Result<Self> {
        if n == 0 {
            return Err(TraceError::InvalidConfig {
                detail: "need at least one target".to_string(),
            });
        }
        let stubs = graph.tier_members(Tier::Stub);
        if stubs.is_empty() {
            return Err(TraceError::InvalidConfig {
                detail: "topology has no stub ASes to host targets".to_string(),
            });
        }
        let mut targets = Vec::with_capacity(n as usize);
        let mut by_asn: BTreeMap<Asn, Vec<TargetId>> = BTreeMap::new();
        for i in 0..n {
            let asn = stubs[i as usize % stubs.len()];
            let prefixes = allocations.get(&asn).ok_or_else(|| TraceError::InvalidConfig {
                detail: format!("{asn} has no prefix allocation"),
            })?;
            let prefix = prefixes[rng.gen_range(0..prefixes.len())];
            let ip = prefix.address(rng.gen_range(1..prefix.size()));
            let id = TargetId(i);
            targets.push(Target { id, ip, asn });
            by_asn.entry(asn).or_default().push(id);
        }
        Ok(TargetPopulation { targets, by_asn })
    }

    /// Target lookup.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTarget`] for an out-of-range id.
    pub fn target(&self, id: TargetId) -> Result<&Target> {
        self.targets.get(id.0 as usize).ok_or(TraceError::UnknownTarget(id))
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the population is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Iterator over all targets.
    pub fn iter(&self) -> impl Iterator<Item = &Target> + '_ {
        self.targets.iter()
    }

    /// Zipf rank of target index `i` under a family's slot-rotated
    /// preference order, further rotated by the governing regime's
    /// [`crate::scenario::RegimeParams::target_rotation`] — how target
    /// migration walks a family's preference head across the population.
    /// A zero rotation reproduces the static slot-only order exactly.
    pub fn preference_rank(
        &self,
        i: usize,
        slot: usize,
        params: &crate::scenario::RegimeParams,
    ) -> usize {
        (i + slot * 13 + params.target_rotation) % self.targets.len()
    }

    /// The targets hosted in a given AS (empty for unknown ASes).
    pub fn in_asn(&self, asn: Asn) -> &[TargetId] {
        self.by_asn.get(&asn).map_or(&[], |v| v.as_slice())
    }

    /// All ASes that host at least one target, ascending.
    pub fn asns(&self) -> Vec<Asn> {
        self.by_asn.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddos_astopo::gen::{TopologyConfig, TopologyGenerator};
    use ddos_astopo::ipmap::PrefixAllocator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (AsGraph, BTreeMap<Asn, Vec<Prefix>>) {
        let g = TopologyGenerator::new(TopologyConfig::small(), 51).generate().unwrap();
        let (_, allocs) = PrefixAllocator::new().allocate_for(&g).unwrap();
        (g, allocs)
    }

    #[test]
    fn spread_covers_population() {
        let (g, allocs) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let pop = TargetPopulation::spread(&g, &allocs, 100, &mut rng).unwrap();
        assert_eq!(pop.len(), 100);
        assert!(!pop.is_empty());
        // Round-robin across 48 stubs: every AS hosts ≥ 1.
        assert_eq!(pop.asns().len(), g.tier_members(Tier::Stub).len());
    }

    #[test]
    fn targets_live_in_their_asn_prefix() {
        let (g, allocs) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let pop = TargetPopulation::spread(&g, &allocs, 60, &mut rng).unwrap();
        for t in pop.iter() {
            let prefixes = &allocs[&t.asn];
            assert!(prefixes.iter().any(|p| p.contains(t.ip)), "{} outside prefix", t.id);
            assert_eq!(g.info(t.asn).unwrap().tier, Tier::Stub);
        }
    }

    #[test]
    fn lookup_and_by_asn_consistent() {
        let (g, allocs) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let pop = TargetPopulation::spread(&g, &allocs, 50, &mut rng).unwrap();
        for t in pop.iter() {
            assert_eq!(pop.target(t.id).unwrap().ip, t.ip);
            assert!(pop.in_asn(t.asn).contains(&t.id));
        }
        assert!(pop.target(TargetId(999)).is_err());
        assert!(pop.in_asn(Asn(1)).is_empty()); // tier-1 hosts nothing
    }

    #[test]
    fn zero_targets_rejected() {
        let (g, allocs) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(TargetPopulation::spread(&g, &allocs, 0, &mut rng).is_err());
    }

    #[test]
    fn display_id() {
        assert_eq!(TargetId(8).to_string(), "target#8");
    }
}
