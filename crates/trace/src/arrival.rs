//! The doubly-stochastic attack-arrival process.
//!
//! Daily attack counts per family are Poisson draws around a latent
//! log-normal AR(1) rate. The construction is calibrated so that, over the
//! family's active days, the observed mean and coefficient of variation
//! reproduce Table I:
//!
//! * mean: the latent multiplier has unit expectation (`exp(z − σ²/2)`),
//! * CV: `CV² = 1/m + (e^{σ²} − 1)` with σ from
//!   [`FamilyProfile::rate_sigma`],
//! * autocorrelation: the AR(1) persistence (`rate_phi`) is what gives the
//!   paper's temporal ARIMA model something real to fit — attack volume
//!   today predicts attack volume tomorrow.
//!
//! Hours within a day follow the family's diurnal launch profile.

use crate::family::FamilyProfile;
use crate::scenario::{RegimeParams, RegimeSchedule};
use crate::time::Timestamp;
use crate::Result;
use ddos_stats::distributions::{poisson, standard_normal, DiurnalProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One active day in a family's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayPlan {
    /// Day index since trace start.
    pub day: u32,
    /// Number of attacks to launch that day.
    pub count: u32,
    /// The latent rate that produced the count (useful for diagnostics).
    pub rate: f64,
}

/// A family's full arrival schedule over the trace window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    days: Vec<DayPlan>,
}

impl ArrivalSchedule {
    /// Generates the schedule for one family.
    ///
    /// `slot` staggers the family's activity window (see
    /// [`FamilyProfile::activity_window`]).
    ///
    /// # Errors
    ///
    /// Propagates sampler parameter errors (none occur for validated
    /// profiles).
    pub fn generate<R: Rng + ?Sized>(
        profile: &FamilyProfile,
        total_days: u32,
        slot: usize,
        rng: &mut R,
    ) -> Result<Self> {
        Self::generate_in_scenario(
            profile,
            total_days,
            slot,
            &RegimeSchedule::stationary(profile),
            rng,
        )
    }

    /// Generates the schedule under a regime timeline: each day's latent
    /// rate is scaled by the regime's intensity before the Poisson draw,
    /// so bursts and lulls shift both the counts and (through the
    /// activity multiplier downstream) the magnitude distribution.
    ///
    /// With a stationary schedule this is draw-for-draw identical to
    /// [`ArrivalSchedule::generate`]: the intensity multiplier is exactly
    /// 1.0 and regime lookups consume no randomness.
    ///
    /// # Errors
    ///
    /// Propagates sampler parameter errors (none occur for validated
    /// profiles).
    pub fn generate_in_scenario<R: Rng + ?Sized>(
        profile: &FamilyProfile,
        total_days: u32,
        slot: usize,
        regimes: &RegimeSchedule,
        rng: &mut R,
    ) -> Result<Self> {
        let (first_day, window_len, p_active) = profile.activity_window(total_days, slot);
        let sigma = profile.rate_sigma();
        let phi = profile.rate_phi;
        // Counts are floored at 1 on active days (a zero-attack "active day"
        // is a contradiction), which would inflate the observed mean by
        // E[e^{-λ}]; solve λ + e^{-λ} = m so the floored mean lands on the
        // Table I average.
        let base = floor_adjusted_rate(profile.avg_attacks_per_day);
        // Stationary AR(1) start.
        let mut z = sigma * standard_normal(rng);
        let innov_std = sigma * (1.0 - phi * phi).sqrt();
        let mut days = Vec::new();
        for d in 0..window_len {
            // Advance the latent state every day, active or not, so
            // dormancy does not freeze the process.
            z = phi * z + innov_std * standard_normal(rng);
            if !rng.gen_bool(p_active) {
                continue;
            }
            // `x * 1.0` is bit-exact, so the stationary single-regime
            // schedule reproduces the unscaled rate to the last bit.
            let rate =
                base * regimes.params_at(first_day + d).intensity * (z - sigma * sigma / 2.0).exp();
            let count = poisson(rng, rate)? as u32;
            if count == 0 {
                // An "active day" with zero attacks would not appear as an
                // active day in the data; launch at least one attack.
                days.push(DayPlan { day: first_day + d, count: 1, rate });
            } else {
                days.push(DayPlan { day: first_day + d, count, rate });
            }
        }
        Ok(ArrivalSchedule { days })
    }

    /// The active days, chronologically.
    pub fn days(&self) -> &[DayPlan] {
        &self.days
    }

    /// Number of active days.
    pub fn active_days(&self) -> usize {
        self.days.len()
    }

    /// Total attacks across the schedule.
    pub fn total_attacks(&self) -> u64 {
        self.days.iter().map(|d| d.count as u64).sum()
    }

    /// Daily counts as an f64 series (for CV checks and model input).
    pub fn daily_counts(&self) -> Vec<f64> {
        self.days.iter().map(|d| d.count as f64).collect()
    }
}

/// Solves `λ + e^{-λ} = m` (fixed-point iteration): the Poisson rate whose
/// floored-at-one expectation equals `m`. For large `m` this is `m` itself.
fn floor_adjusted_rate(m: f64) -> f64 {
    if m > 30.0 {
        return m;
    }
    let mut lambda = (m - (-m).exp()).max(0.01);
    for _ in 0..50 {
        lambda = (m - (-lambda).exp()).max(0.01);
    }
    lambda
}

/// Draws launch timestamps for the attacks of one day: hours follow the
/// family's diurnal profile, seconds are uniform within the hour, and the
/// result is sorted.
pub fn place_within_day<R: Rng + ?Sized>(
    day: u32,
    count: u32,
    profile: &FamilyProfile,
    rng: &mut R,
) -> Result<Vec<Timestamp>> {
    place_within_day_in_regime(day, count, profile, &profile.stationary_regime(), rng)
}

/// [`place_within_day`] under a regime view: the diurnal peak is phase-
/// shifted by the regime before sampling hours. A zero shift reproduces
/// the static placement draw-for-draw.
pub fn place_within_day_in_regime<R: Rng + ?Sized>(
    day: u32,
    count: u32,
    profile: &FamilyProfile,
    params: &RegimeParams,
    rng: &mut R,
) -> Result<Vec<Timestamp>> {
    let diurnal =
        DiurnalProfile::sinusoidal(profile.shifted_peak(params), profile.diurnal_amplitude)?;
    let mut out: Vec<Timestamp> = (0..count)
        .map(|_| {
            let hour = diurnal.sample_hour(rng);
            let sec = rng.gen_range(0..crate::time::HOUR);
            Timestamp::from_day_hour(day, hour) + sec
        })
        .collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyCatalog;
    use ddos_stats::metrics::{coefficient_of_variation, mean};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(name: &str) -> FamilyProfile {
        let c = FamilyCatalog::icdcs2017();
        c.profile(c.by_name(name).unwrap()).unwrap().clone()
    }

    #[test]
    fn schedule_respects_window() {
        let p = profile("YZF"); // 72 active days
        let mut rng = StdRng::seed_from_u64(1);
        let s = ArrivalSchedule::generate(&p, 220, 9, &mut rng).unwrap();
        let (first, len, _) = p.activity_window(220, 9);
        for d in s.days() {
            assert!(d.day >= first && d.day < first + len);
            assert!(d.count >= 1);
        }
    }

    #[test]
    fn active_day_count_near_table1() {
        let p = profile("Pandora"); // 165 active days
        let mut totals = Vec::new();
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = ArrivalSchedule::generate(&p, 220, 8, &mut rng).unwrap();
            totals.push(s.active_days() as f64);
        }
        let avg = mean(&totals).unwrap();
        assert!((avg - 165.0).abs() < 12.0, "avg active days {avg}");
    }

    #[test]
    fn mean_daily_count_near_table1() {
        let p = profile("DirtJumper");
        let mut rng = StdRng::seed_from_u64(3);
        let s = ArrivalSchedule::generate(&p, 220, 5, &mut rng).unwrap();
        let m = mean(&s.daily_counts()).unwrap();
        assert!((m - 144.3).abs() < 25.0, "mean daily {m}");
    }

    #[test]
    fn cv_calibration_overdispersed_family() {
        let p = profile("Pandora"); // CV 1.27
        let mut cvs = Vec::new();
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let s = ArrivalSchedule::generate(&p, 220, 8, &mut rng).unwrap();
            cvs.push(coefficient_of_variation(&s.daily_counts()).unwrap());
        }
        let avg_cv = mean(&cvs).unwrap();
        assert!((avg_cv - 1.27).abs() < 0.4, "CV {avg_cv} should be near 1.27");
    }

    #[test]
    fn cv_ordering_stable_vs_bursty() {
        // DirtJumper (0.77) should come out less variable than Colddeath (1.53).
        let stable = profile("DirtJumper");
        let bursty = profile("Colddeath");
        let mut rng = StdRng::seed_from_u64(7);
        let s1 = ArrivalSchedule::generate(&stable, 220, 5, &mut rng).unwrap();
        let s2 = ArrivalSchedule::generate(&bursty, 220, 2, &mut rng).unwrap();
        let cv1 = coefficient_of_variation(&s1.daily_counts()).unwrap();
        let cv2 = coefficient_of_variation(&s2.daily_counts()).unwrap();
        assert!(cv1 < cv2, "DirtJumper CV {cv1} should be below Colddeath CV {cv2}");
    }

    #[test]
    fn daily_rates_are_autocorrelated() {
        let p = profile("DirtJumper");
        let mut rng = StdRng::seed_from_u64(8);
        let s = ArrivalSchedule::generate(&p, 220, 5, &mut rng).unwrap();
        let rates: Vec<f64> = s.days().iter().map(|d| d.rate).collect();
        let acf = ddos_stats::acf::acf(&rates, 1).unwrap();
        assert!(acf[1] > 0.3, "lag-1 rate ACF {} should be positive", acf[1]);
    }

    #[test]
    fn total_attacks_in_expected_range() {
        let p = profile("BlackEnergy"); // 5.93 × 220 ≈ 1305
        let mut rng = StdRng::seed_from_u64(9);
        let s = ArrivalSchedule::generate(&p, 220, 1, &mut rng).unwrap();
        let total = s.total_attacks() as f64;
        assert!(total > 700.0 && total < 2_200.0, "total {total}");
    }

    #[test]
    fn floor_adjustment_fixes_small_family_means() {
        // AldiBot: m = 1.29. Floored Poisson at the adjusted rate must
        // average ~1.29, not ~1.57.
        let lambda = super::floor_adjusted_rate(1.29);
        assert!((lambda + (-lambda).exp() - 1.29).abs() < 1e-6);
        assert!(lambda < 1.29);
        // Large means are untouched.
        assert_eq!(super::floor_adjusted_rate(144.3), 144.3);
    }

    #[test]
    fn small_family_observed_mean_near_target() {
        let p = profile("AldiBot"); // 1.29/day
        let mut means = Vec::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let s = ArrivalSchedule::generate(&p, 220, 0, &mut rng).unwrap();
            means.push(mean(&s.daily_counts()).unwrap());
        }
        let avg = mean(&means).unwrap();
        assert!((avg - 1.29).abs() < 0.15, "AldiBot mean {avg} should be near 1.29");
    }

    #[test]
    fn place_within_day_sorted_and_in_day() {
        let p = profile("Optima");
        let mut rng = StdRng::seed_from_u64(10);
        let ts = place_within_day(12, 40, &p, &mut rng).unwrap();
        assert_eq!(ts.len(), 40);
        for w in ts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(ts.iter().all(|t| t.day() == 12));
    }

    #[test]
    fn placement_follows_diurnal_peak() {
        let p = profile("YZF"); // peak at 22, strong amplitude
        let mut rng = StdRng::seed_from_u64(11);
        let mut hour_counts = [0usize; 24];
        for _ in 0..60 {
            for t in place_within_day(0, 50, &p, &mut rng).unwrap() {
                hour_counts[t.hour() as usize] += 1;
            }
        }
        let trough = hour_counts[10]; // 12h away from the peak
        assert!(hour_counts[22] > trough * 2, "peak {} vs trough {trough}", hour_counts[22]);
    }
}
