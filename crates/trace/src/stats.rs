//! Corpus-level summary statistics — most importantly the regeneration of
//! the paper's **Table I** (activity level of bots).

use crate::dataset::Corpus;
use crate::Result;
use ddos_stats::metrics::{coefficient_of_variation, mean};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the activity-level table: a family's average attacks per
/// active day, number of active days, and daily-count CV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRow {
    /// Family name.
    pub family: String,
    /// Average number of attacks per active day.
    pub avg_per_day: f64,
    /// Number of days with at least one attack.
    pub active_days: usize,
    /// Coefficient of variation of daily counts over active days.
    pub cv: f64,
}

/// The regenerated Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityTable {
    rows: Vec<ActivityRow>,
}

impl ActivityTable {
    /// Computes the table from a corpus, one row per catalog family, in
    /// catalog order (the paper lists families alphabetically; catalog
    /// order is alphabetical for the built-in catalog).
    ///
    /// # Errors
    ///
    /// Propagates metric errors for degenerate families (e.g. a family
    /// with a single active day has no CV).
    pub fn compute(corpus: &Corpus) -> Result<Self> {
        let mut rows = Vec::new();
        for (id, profile) in corpus.catalog().iter() {
            let counts = corpus.active_daily_counts(id);
            if counts.is_empty() {
                rows.push(ActivityRow {
                    family: profile.name.clone(),
                    avg_per_day: 0.0,
                    active_days: 0,
                    cv: 0.0,
                });
                continue;
            }
            let avg = mean(&counts)?;
            let cv = if counts.len() >= 2 {
                coefficient_of_variation(&counts).unwrap_or(0.0)
            } else {
                0.0
            };
            rows.push(ActivityRow {
                family: profile.name.clone(),
                avg_per_day: avg,
                active_days: counts.len(),
                cv,
            });
        }
        Ok(ActivityTable { rows })
    }

    /// The table rows, in catalog order.
    pub fn rows(&self) -> &[ActivityRow] {
        &self.rows
    }

    /// Row lookup by family name.
    pub fn row(&self, family: &str) -> Option<&ActivityRow> {
        self.rows.iter().find(|r| r.family == family)
    }

    /// Family names ordered by average attacks per day, descending.
    pub fn activity_ranking(&self) -> Vec<&str> {
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        // total_cmp: a NaN average (degenerate corpus) must not panic the
        // ranking; NaN rows sort after every real one.
        idx.sort_by(|a, b| {
            let (x, y) = (self.rows[*a].avg_per_day, self.rows[*b].avg_per_day);
            x.is_nan().cmp(&y.is_nan()).then(y.total_cmp(&x))
        });
        idx.into_iter().map(|i| self.rows[i].family.as_str()).collect()
    }
}

impl fmt::Display for ActivityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} {:>10} {:>13} {:>6}", "Family", "Avg #/Day", "# Active Days", "CV")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>10.2} {:>13} {:>6.2}",
                r.family, r.avg_per_day, r.active_days, r.cv
            )?;
        }
        Ok(())
    }
}

/// Per-family histogram over [`crate::attack::AttackVector::ALL`]: the
/// fraction of the family's attacks using each traffic mechanism.
pub fn vector_mix(corpus: &Corpus, family: crate::family::FamilyId) -> [f64; 4] {
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for a in corpus.attacks().iter().filter(|a| a.family == family) {
        counts[a.vector.index()] += 1;
        total += 1;
    }
    if total == 0 {
        return [0.0; 4];
    }
    let mut out = [0.0; 4];
    for (o, c) in out.iter_mut().zip(counts) {
        *o = c as f64 / total as f64;
    }
    out
}

/// Mean number of simultaneously-running verified attacks, sampled hourly —
/// the paper reports "on average there were 243 simultaneous verified DDoS
/// attacks" at peak analysis load (§II-C).
pub fn mean_concurrent_attacks(corpus: &Corpus) -> f64 {
    let horizon = corpus.days() as u64 * 24;
    if horizon == 0 {
        return 0.0;
    }
    let mut per_hour = vec![0u32; horizon as usize + 96];
    for a in corpus.attacks() {
        let first = a.start.absolute_hour() as usize;
        let last = a.end().absolute_hour() as usize;
        for h in first..=last.min(per_hour.len() - 1) {
            per_hour[h] += 1;
        }
    }
    let active: Vec<f64> = per_hour.iter().filter(|c| **c > 0).map(|c| *c as f64).collect();
    if active.is_empty() {
        0.0
    } else {
        active.iter().sum::<f64>() / active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), 81).generate().unwrap()
    }

    #[test]
    fn table_has_one_row_per_family() {
        let c = corpus();
        let t = ActivityTable::compute(&c).unwrap();
        assert_eq!(t.rows().len(), c.catalog().len());
    }

    #[test]
    fn averages_match_raw_counts() {
        let c = corpus();
        let t = ActivityTable::compute(&c).unwrap();
        for (id, profile) in c.catalog().iter() {
            let row = t.row(&profile.name).unwrap();
            let total: f64 = c.active_daily_counts(id).iter().sum();
            let expect = total / row.active_days as f64;
            assert!((row.avg_per_day - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ranking_puts_dirtjumper_first() {
        let c = corpus();
        let t = ActivityTable::compute(&c).unwrap();
        assert_eq!(t.activity_ranking()[0], "DirtJumper");
    }

    #[test]
    fn display_renders_all_rows() {
        let c = corpus();
        let t = ActivityTable::compute(&c).unwrap();
        let s = t.to_string();
        assert!(s.contains("DirtJumper"));
        assert!(s.contains("Avg #/Day"));
        assert_eq!(s.lines().count(), t.rows().len() + 1);
    }

    #[test]
    fn concurrency_is_positive() {
        let c = corpus();
        let m = mean_concurrent_attacks(&c);
        assert!(m > 0.0, "mean concurrency {m}");
    }

    #[test]
    fn vector_mix_reflects_family_tooling() {
        let c = corpus();
        // DirtJumper is an HTTP-flood kit: http must dominate its mix.
        let dj = c.catalog().by_name("DirtJumper").unwrap();
        let mix = vector_mix(&c, dj);
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let http = crate::attack::AttackVector::HttpFlood.index();
        assert!(mix[http] > 0.5, "DirtJumper http share {}", mix[http]);
        // Unknown family: all zeros.
        assert_eq!(vector_mix(&c, crate::family::FamilyId(99)), [0.0; 4]);
    }

    #[test]
    fn missing_family_row_is_none() {
        let c = corpus();
        let t = ActivityTable::compute(&c).unwrap();
        assert!(t.row("NoSuchFamily").is_none());
    }

    #[test]
    fn ranking_survives_nan_averages() {
        // A degenerate corpus (e.g. a family whose every attack lands on
        // a zero-count day after filtering) can surface a NaN average;
        // the ranking must order it last, not panic mid-sort.
        let t = ActivityTable {
            rows: vec![
                ActivityRow {
                    family: "Broken".into(),
                    avg_per_day: f64::NAN,
                    active_days: 0,
                    cv: f64::NAN,
                },
                ActivityRow { family: "Low".into(), avg_per_day: 1.5, active_days: 3, cv: 0.2 },
                ActivityRow { family: "High".into(), avg_per_day: 99.0, active_days: 9, cv: 0.4 },
            ],
        };
        assert_eq!(t.activity_ranking(), vec!["High", "Low", "Broken"]);
    }
}
