//! Columnar on-disk trace format.
//!
//! Attack records serialize into per-column blocks grouped into row
//! groups, wrapped in the same envelope discipline as the artifact
//! format: a magic + version header, length-prefixed tagged sections,
//! and a footer carrying the row/group counts and an FNV-1a checksum
//! over every group payload. Encoding rides on the bit-exact
//! [`ddos_stats::codec`] primitives, so the byte stream is stable across
//! platforms and releases — it is pinned by a golden fingerprint.
//!
//! The writer accepts records one at a time (from a
//! [`crate::stream::CorpusStream`] or any other source) and flushes a
//! group whenever `rows_per_group` accumulate, so an Internet-scale
//! corpus encodes in constant memory. The reader mirrors that: one row
//! group is resident at a time.
//!
//! Every failure mode is a typed [`TraceError`] — truncated files,
//! flipped bytes, alien tags and range violations all surface as errors,
//! never panics or silent corruption.

use crate::attack::{AttackId, AttackRecord, AttackVector, BotObservation};
use crate::family::FamilyId;
use crate::targets::TargetId;
use crate::time::Timestamp;
use crate::{Result, TraceError};
use ddos_astopo::Asn;
use ddos_stats::codec::{CodecError, Reader, Writer};
use std::io::{Read, Write};

/// File magic, 8 bytes.
pub const MAGIC: [u8; 8] = *b"DDOSCOL\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Default rows per row group.
pub const DEFAULT_ROWS_PER_GROUP: usize = 4_096;

/// Section tag: one row group of attack records.
const TAG_ROW_GROUP: u8 = 1;
/// Section tag: the terminal footer.
const TAG_FOOTER: u8 = 2;

/// Cheapest possible row: 8 (id) + 8 (family) + 4 + 4 (target, ASN) +
/// 8 + 8 (start, duration) + 1 + 1 (flags) bytes, before the variable
/// columns. Used to reject absurd row counts before allocating.
const MIN_ROW_BYTES: usize = 42;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, b| (h ^ *b as u64).wrapping_mul(FNV_PRIME))
}

/// Encodes one row group into a codec payload: the row count, then each
/// column in full, variable-length columns as offsets + values.
fn encode_group(records: &[AttackRecord]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(records.len());
    for a in records {
        w.u64(a.id.0);
    }
    for a in records {
        w.usize(a.family.0);
    }
    for a in records {
        w.u32(a.target.0);
    }
    for a in records {
        w.u32(a.target_asn.0);
    }
    for a in records {
        w.u64(a.start.as_secs());
    }
    for a in records {
        w.u64(a.duration_secs);
    }
    for a in records {
        w.bool(a.multistage);
    }
    for a in records {
        w.u8(a.vector.index() as u8);
    }
    let hourly_offsets: Vec<usize> = offsets(records, |a| a.hourly_bot_counts.len());
    w.usize_seq(&hourly_offsets);
    for a in records {
        for c in &a.hourly_bot_counts {
            w.u32(*c);
        }
    }
    let bot_offsets: Vec<usize> = offsets(records, |a| a.bots().len());
    w.usize_seq(&bot_offsets);
    for a in records {
        for b in a.bots() {
            w.u32(b.ip);
        }
    }
    for a in records {
        for b in a.bots() {
            w.u32(b.asn.0);
        }
    }
    w.into_bytes()
}

/// Exclusive prefix sums of a per-record length, `records.len() + 1`
/// entries starting at 0.
fn offsets(records: &[AttackRecord], len: impl Fn(&AttackRecord) -> usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(records.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for a in records {
        acc += len(a);
        out.push(acc);
    }
    out
}

/// Validates an offsets column: `n + 1` entries, starting at zero,
/// nondecreasing. Returns the total value count.
fn check_offsets(offsets: &[usize], n_rows: usize, column: &str) -> Result<usize> {
    if offsets.len() != n_rows + 1 || offsets.first() != Some(&0) {
        return Err(TraceError::Format {
            detail: format!("{column} offsets: expected {} entries from 0", n_rows + 1),
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(TraceError::Format { detail: format!("{column} offsets decrease") });
    }
    Ok(*offsets.last().unwrap_or(&0))
}

/// Reads `n` u32 values, guarding the allocation against a corrupted
/// count before touching memory.
fn read_u32s(r: &mut Reader<'_>, n: usize) -> Result<Vec<u32>> {
    if n.saturating_mul(4) > r.remaining() {
        return Err(CodecError::Truncated {
            needed: n.saturating_mul(4),
            remaining: r.remaining(),
        }
        .into());
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

/// Decodes one row group payload back into records.
fn decode_group(payload: &[u8]) -> Result<Vec<AttackRecord>> {
    let mut r = Reader::new(payload);
    let n = r.len(MIN_ROW_BYTES)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64()?);
    }
    let mut families = Vec::with_capacity(n);
    for _ in 0..n {
        families.push(r.usize()?);
    }
    let targets = read_u32s(&mut r, n)?;
    let target_asns = read_u32s(&mut r, n)?;
    let mut starts = Vec::with_capacity(n);
    for _ in 0..n {
        starts.push(r.u64()?);
    }
    let mut durations = Vec::with_capacity(n);
    for _ in 0..n {
        durations.push(r.u64()?);
    }
    let mut multistage = Vec::with_capacity(n);
    for _ in 0..n {
        multistage.push(r.bool()?);
    }
    let mut vectors = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.u8()?;
        let vector = AttackVector::ALL.get(idx as usize).copied().ok_or_else(|| {
            TraceError::Format { detail: format!("vector index {idx} out of range") }
        })?;
        vectors.push(vector);
    }
    let hourly_offsets = r.usize_seq()?;
    let total_hourly = check_offsets(&hourly_offsets, n, "hourly_bot_counts")?;
    let hourly_values = read_u32s(&mut r, total_hourly)?;
    let bot_offsets = r.usize_seq()?;
    let total_bots = check_offsets(&bot_offsets, n, "bots")?;
    let bot_ips = read_u32s(&mut r, total_bots)?;
    let bot_asns = read_u32s(&mut r, total_bots)?;
    r.finish()?;

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let bots: Vec<BotObservation> = (bot_offsets[i]..bot_offsets[i + 1])
            .map(|j| BotObservation { ip: bot_ips[j], asn: Asn(bot_asns[j]) })
            .collect();
        out.push(AttackRecord::new(
            AttackId(ids[i]),
            FamilyId(families[i]),
            TargetId(targets[i]),
            Asn(target_asns[i]),
            Timestamp(starts[i]),
            durations[i],
            bots,
            hourly_values[hourly_offsets[i]..hourly_offsets[i + 1]].to_vec(),
            multistage[i],
            vectors[i],
        ));
    }
    Ok(out)
}

/// Streaming columnar writer over any [`Write`] sink.
///
/// Push records in final order (e.g. straight off a
/// [`crate::stream::CorpusStream`]); groups flush as they fill, and
/// [`ColumnarWriter::finish`] seals the file with the checksummed footer.
/// Dropping the writer without `finish` leaves a file the reader rejects
/// — truncation is always detected.
pub struct ColumnarWriter<W: Write> {
    sink: W,
    buf: Vec<AttackRecord>,
    rows_per_group: usize,
    n_groups: u64,
    n_rows: u64,
    checksum: u64,
}

impl<W: Write> ColumnarWriter<W> {
    /// Opens a writer with the default group size and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`TraceError::Io`].
    pub fn new(sink: W) -> Result<Self> {
        ColumnarWriter::with_group_size(sink, DEFAULT_ROWS_PER_GROUP)
    }

    /// Opens a writer with an explicit rows-per-group (≥ 1).
    ///
    /// # Errors
    ///
    /// Rejects a zero group size; propagates I/O failures.
    pub fn with_group_size(mut sink: W, rows_per_group: usize) -> Result<Self> {
        if rows_per_group == 0 {
            return Err(TraceError::InvalidConfig {
                detail: "rows_per_group must be nonzero".to_string(),
            });
        }
        sink.write_all(&MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        Ok(ColumnarWriter {
            sink,
            buf: Vec::with_capacity(rows_per_group),
            rows_per_group,
            n_groups: 0,
            n_rows: 0,
            checksum: FNV_OFFSET,
        })
    }

    /// Appends one record, flushing a row group when full.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn push(&mut self, record: AttackRecord) -> Result<()> {
        self.buf.push(record);
        if self.buf.len() >= self.rows_per_group {
            self.flush_group()?;
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let payload = encode_group(&self.buf);
        self.checksum = fnv1a(self.checksum, &payload);
        self.n_groups += 1;
        self.n_rows += self.buf.len() as u64;
        self.buf.clear();
        write_section(&mut self.sink, TAG_ROW_GROUP, &payload)
    }

    /// Flushes the tail group, writes the footer and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<W> {
        self.flush_group()?;
        let mut footer = Writer::new();
        footer.u64(self.n_groups);
        footer.u64(self.n_rows);
        footer.u64(self.checksum);
        write_section(&mut self.sink, TAG_FOOTER, &footer.into_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Rows written (or buffered) so far.
    pub fn rows(&self) -> u64 {
        self.n_rows + self.buf.len() as u64
    }
}

fn write_section<W: Write>(sink: &mut W, tag: u8, payload: &[u8]) -> Result<()> {
    sink.write_all(&[tag])?;
    sink.write_all(&(payload.len() as u64).to_le_bytes())?;
    sink.write_all(payload)?;
    Ok(())
}

/// Serializes a whole in-RAM corpus's records. Returns the sink.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_corpus<W: Write>(corpus: &crate::Corpus, sink: W) -> Result<W> {
    let mut w = ColumnarWriter::new(sink)?;
    for a in corpus.attacks() {
        w.push(a.clone())?;
    }
    w.finish()
}

/// Streaming columnar reader: one row group resident at a time.
pub struct ColumnarReader<R: Read> {
    source: R,
    n_groups: u64,
    n_rows: u64,
    checksum: u64,
    finished: bool,
}

impl<R: Read> ColumnarReader<R> {
    /// Opens the file, validating magic and version.
    ///
    /// # Errors
    ///
    /// [`TraceError::Format`] on a foreign or future file,
    /// [`TraceError::Io`] on I/O failure.
    pub fn new(mut source: R) -> Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::Format { detail: format!("bad magic {magic:02x?}") });
        }
        let mut ver = [0u8; 4];
        source.read_exact(&mut ver)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::Format {
                detail: format!("unsupported version {version} (have {VERSION})"),
            });
        }
        Ok(ColumnarReader { source, n_groups: 0, n_rows: 0, checksum: FNV_OFFSET, finished: false })
    }

    /// Reads the next row group, or `Ok(None)` after the validated footer.
    ///
    /// # Errors
    ///
    /// [`TraceError::Format`] for structural corruption (alien tags,
    /// count or checksum mismatches, trailing bytes),
    /// [`TraceError::Codec`] for in-group decoding failures,
    /// [`TraceError::Io`] for truncation mid-section.
    pub fn next_group(&mut self) -> Result<Option<Vec<AttackRecord>>> {
        if self.finished {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        if let Err(e) = self.source.read_exact(&mut tag) {
            // Clean EOF without a footer is truncation, not completion.
            self.finished = true;
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Format { detail: "file ends without a footer".to_string() }
            } else {
                e.into()
            });
        }
        let mut len = [0u8; 8];
        self.source.read_exact(&mut len)?;
        let len = u64::from_le_bytes(len);
        // Incremental read: a corrupted length cannot trigger a huge
        // up-front allocation, only a truncation error.
        let mut payload = Vec::new();
        self.source.by_ref().take(len).read_to_end(&mut payload)?;
        if payload.len() as u64 != len {
            self.finished = true;
            return Err(TraceError::Format {
                detail: format!("section truncated: {} of {len} bytes", payload.len()),
            });
        }
        match tag[0] {
            TAG_ROW_GROUP => {
                self.checksum = fnv1a(self.checksum, &payload);
                let records = decode_group(&payload)?;
                self.n_groups += 1;
                self.n_rows += records.len() as u64;
                Ok(Some(records))
            }
            TAG_FOOTER => {
                self.finished = true;
                let mut r = Reader::new(&payload);
                let n_groups = r.u64()?;
                let n_rows = r.u64()?;
                let checksum = r.u64()?;
                r.finish()?;
                if n_groups != self.n_groups || n_rows != self.n_rows {
                    return Err(TraceError::Format {
                        detail: format!(
                            "footer counts {n_groups}/{n_rows} != observed {}/{}",
                            self.n_groups, self.n_rows
                        ),
                    });
                }
                if checksum != self.checksum {
                    return Err(TraceError::Format {
                        detail: format!(
                            "checksum mismatch: footer {checksum:016x}, observed {:016x}",
                            self.checksum
                        ),
                    });
                }
                let mut trailing = [0u8; 1];
                match self.source.read_exact(&mut trailing) {
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
                    Ok(()) => Err(TraceError::Format {
                        detail: "trailing bytes after footer".to_string(),
                    }),
                    Err(e) => Err(e.into()),
                }
            }
            t => Err(TraceError::Format { detail: format!("unknown section tag {t}") }),
        }
    }

    /// Rows decoded so far.
    pub fn rows(&self) -> u64 {
        self.n_rows
    }

    /// Adapts the reader into a record iterator.
    pub fn into_records(self) -> Records<R> {
        Records { reader: self, buf: std::collections::VecDeque::new(), fused: false }
    }
}

/// Record-level iterator over a columnar file.
pub struct Records<R: Read> {
    reader: ColumnarReader<R>,
    buf: std::collections::VecDeque<AttackRecord>,
    fused: bool,
}

impl<R: Read> Iterator for Records<R> {
    type Item = Result<AttackRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        loop {
            if let Some(r) = self.buf.pop_front() {
                return Some(Ok(r));
            }
            match self.reader.next_group() {
                Ok(Some(group)) => self.buf.extend(group),
                Ok(None) => {
                    self.fused = true;
                    return None;
                }
                Err(e) => {
                    self.fused = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> crate::Corpus {
        TraceGenerator::new(CorpusConfig::small(), 42).generate_partitioned().unwrap()
    }

    fn encode(c: &crate::Corpus, group: usize) -> Vec<u8> {
        let mut w = ColumnarWriter::with_group_size(Vec::new(), group).unwrap();
        for a in c.attacks() {
            w.push(a.clone()).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let c = corpus();
        let bytes = encode(&c, 100);
        let decoded: Vec<AttackRecord> =
            ColumnarReader::new(&bytes[..]).unwrap().into_records().collect::<Result<_>>().unwrap();
        assert_eq!(decoded.len(), c.len());
        for (d, a) in decoded.iter().zip(c.attacks()) {
            assert_eq!(d, a);
        }
    }

    #[test]
    fn encoding_is_byte_stable() {
        let c = corpus();
        assert_eq!(encode(&c, 100), encode(&c, 100));
        // Group size changes the framing, not the decoded records.
        let small_groups: Vec<AttackRecord> = ColumnarReader::new(&encode(&c, 7)[..])
            .unwrap()
            .into_records()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(small_groups.as_slice(), c.attacks());
    }

    #[test]
    fn streamed_write_matches_corpus_write() {
        let c = corpus();
        let via_corpus = write_corpus(&c, Vec::new()).unwrap();
        let mut w = ColumnarWriter::new(Vec::new()).unwrap();
        for r in crate::stream::CorpusStream::new(CorpusConfig::small(), 42).unwrap() {
            w.push(r.unwrap()).unwrap();
        }
        assert_eq!(w.finish().unwrap(), via_corpus);
    }

    #[test]
    fn every_truncation_prefix_errors_cleanly() {
        let c = corpus();
        let bytes = encode(&c, 50);
        // Chop at a spread of prefixes including every boundary-ish zone;
        // exhaustive over the first sections, strided over the bulk.
        let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
        cuts.extend((64..bytes.len()).step_by(97));
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            let truncated = &bytes[..cut];
            let outcome: Result<Vec<AttackRecord>> = ColumnarReader::new(truncated)
                .and_then(|r| r.into_records().collect::<Result<_>>());
            assert!(outcome.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn reader_rejects_foreign_headers() {
        assert!(ColumnarReader::new(&b"NOTMAGIC\x01\x00\x00\x00"[..]).is_err());
        let mut future = Vec::from(MAGIC);
        future.extend_from_slice(&99u32.to_le_bytes());
        assert!(ColumnarReader::new(&future[..]).is_err());
        // Unfinished file: header only, no footer.
        let mut header = Vec::from(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        let mut r = ColumnarReader::new(&header[..]).unwrap();
        assert!(r.next_group().is_err());
    }
}
