//! The adversary scenario layer: regime-switching attacker policies.
//!
//! The paper calibrates each family's marginals once and replays them for
//! the whole window; this module lifts those marginals into a
//! *policy* — a deterministic per-family regime-switching process that
//! mutates intensity, diurnal phase, target-preference rotation, duration
//! AR(1) shape, pool engagement and attack-vector blend at regime
//! boundaries. Every generation path consumes a [`RegimeParams`] view
//! instead of reading the static [`FamilyProfile`] fields directly, so
//! swapping the adversary's strategy is a configuration change, not a
//! generator rewrite.
//!
//! Two invariants make the layer safe to thread through the streaming
//! generator:
//!
//! * **Regime schedules draw from their own stream.** Boundaries and
//!   per-regime mutations come from a dedicated splitmix64 sequence
//!   ([`scenario_seed`]-derived), never from the family's `StdRng`, so a
//!   policy change never shifts the draw sequence of anything it does not
//!   directly parameterize — and [`ScenarioPolicy::Stationary`] consumes
//!   zero draws, leaving every existing fingerprint byte-identical.
//! * **Schedules are precomputed and day-indexed.** A
//!   [`RegimeSchedule`] is a function of `(policy, profile, days, seed,
//!   slot)` alone; lookups key on the *plan day*, so advancing a family in
//!   1-day or 64-day chunks, serially or across workers, walks the exact
//!   same parameter sequence (the [`crate::stream::CorpusStream`]
//!   safe-emission bound never sees regime state at all).

use crate::family::FamilyProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A built-in attacker policy governing how family behavior evolves over
/// the trace window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ScenarioPolicy {
    /// The paper's static process: one regime equal to the calibrated
    /// profile. Bit-identical to the pre-scenario generator.
    #[default]
    Stationary,
    /// Alternating burst/lull regimes: intensity swings far above and
    /// below the calibrated rate while bursts mobilize a wider slice of
    /// the bot pool and nudge target preferences.
    RotationBurst,
    /// The family walks its target-preference head across the population
    /// in large jumps, resetting per-target duration memory and mutating
    /// the duration AR(1) shape as campaigns move.
    TargetMigration,
    /// The diurnal launch phase drifts forward a few hours per regime —
    /// the botmaster's schedule (or timezone) migrates.
    DiurnalDrift,
    /// The attack-vector mix switches between volumetric, protocol and
    /// application blends (the CE-CMS pattern taxonomy) regime to regime.
    MultiVectorBlend,
}

impl ScenarioPolicy {
    /// Every built-in policy, in stable order.
    pub const ALL: [ScenarioPolicy; 5] = [
        ScenarioPolicy::Stationary,
        ScenarioPolicy::RotationBurst,
        ScenarioPolicy::TargetMigration,
        ScenarioPolicy::DiurnalDrift,
        ScenarioPolicy::MultiVectorBlend,
    ];

    /// Stable lower-case name (CLI and report label).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPolicy::Stationary => "stationary",
            ScenarioPolicy::RotationBurst => "rotation-burst",
            ScenarioPolicy::TargetMigration => "target-migration",
            ScenarioPolicy::DiurnalDrift => "diurnal-drift",
            ScenarioPolicy::MultiVectorBlend => "multi-vector-blend",
        }
    }

    /// Parses a [`ScenarioPolicy::name`] back to the policy.
    pub fn parse(s: &str) -> Option<Self> {
        ScenarioPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether this is the static single-regime policy.
    pub fn is_stationary(self) -> bool {
        self == ScenarioPolicy::Stationary
    }
}

impl fmt::Display for ScenarioPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The regime-local parameter view the generation stack consumes in place
/// of static profile fields. [`FamilyProfile::stationary_regime`] produces
/// the view equal to the calibrated marginals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeParams {
    /// Multiplier on the latent daily attack rate (1.0 = calibrated).
    pub intensity: f64,
    /// Hours added to the family's diurnal peak, `0..24`.
    pub diurnal_shift: u8,
    /// Extra rotation applied to the target-preference rank order.
    pub target_rotation: usize,
    /// AR(1) persistence of per-target log-durations for this regime.
    pub duration_persistence: f64,
    /// Log-space σ of attack duration for this regime.
    pub duration_sigma: f64,
    /// Multiplier on the bot pool's active-window fraction (1.0 =
    /// calibrated; bursts mobilize more of the pool).
    pub pool_engagement: f64,
    /// Relative weights over [`crate::attack::AttackVector::ALL`].
    pub vector_weights: [f64; 4],
}

/// One regime: the day it starts and the parameters in force until the
/// next regime begins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regime {
    /// First day (inclusive) this regime governs.
    pub start_day: u32,
    /// The regime-local parameter view.
    pub params: RegimeParams,
}

/// A family's full regime timeline over the trace window: regime 0 always
/// starts on day 0 with the calibrated (stationary) parameters, so every
/// policy's pre-shift behavior *is* the paper's process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeSchedule {
    regimes: Vec<Regime>,
}

/// Derives the scenario stream seed for one family. Salting the corpus
/// seed before the splitmix64 finalizer keeps this stream disjoint from
/// [`crate::generator::family_seed`], so regime randomness never collides
/// with generation randomness.
fn scenario_seed(seed: u64, slot: usize) -> u64 {
    let mut z = (seed ^ 0xA076_1D64_78BD_642F) ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal splitmix64 sequence for regime scheduling. Deliberately *not*
/// the family `StdRng`: scenario draws must never perturb generation
/// draws.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RegimeSchedule {
    /// The single-regime schedule equal to the calibrated profile.
    pub fn stationary(profile: &FamilyProfile) -> Self {
        RegimeSchedule {
            regimes: vec![Regime { start_day: 0, params: profile.stationary_regime() }],
        }
    }

    /// Generates the family's regime timeline for `policy` over
    /// `total_days`, deterministically in `(policy, profile, seed, slot)`.
    /// Regime lengths center on `total_days / 5` (clamped to 7–365 days)
    /// with ±50% jitter; regime 0 is always the stationary view.
    pub fn generate(
        policy: ScenarioPolicy,
        profile: &FamilyProfile,
        total_days: u32,
        seed: u64,
        slot: usize,
    ) -> Self {
        let base = profile.stationary_regime();
        let mut regimes = vec![Regime { start_day: 0, params: base }];
        if policy.is_stationary() {
            return RegimeSchedule { regimes };
        }
        let mut rng = SplitMix64(scenario_seed(seed, slot));
        let mean_len = (total_days / 5).clamp(7, 365);
        let next_len = |rng: &mut SplitMix64| {
            (mean_len / 2).max(1) + (rng.next_u64() % (mean_len as u64 + 1)) as u32
        };
        let mut day = next_len(&mut rng);
        let mut prev = base;
        let mut idx = 1usize;
        while day < total_days {
            let params = mutate(policy, &base, &prev, idx, &mut rng);
            regimes.push(Regime { start_day: day, params });
            prev = params;
            day = day.saturating_add(next_len(&mut rng));
            idx += 1;
        }
        RegimeSchedule { regimes }
    }

    /// All regimes, chronologically; the first always starts on day 0.
    pub fn regimes(&self) -> &[Regime] {
        &self.regimes
    }

    /// Index of the regime governing `day`.
    pub fn index_at(&self, day: u32) -> usize {
        self.regimes.partition_point(|r| r.start_day <= day) - 1
    }

    /// The parameter view governing `day`.
    pub fn params_at(&self, day: u32) -> &RegimeParams {
        &self.regimes[self.index_at(day)].params
    }

    /// Days on which a new regime begins (excludes day 0).
    pub fn boundaries(&self) -> Vec<u32> {
        self.regimes[1..].iter().map(|r| r.start_day).collect()
    }
}

/// Mutates the stationary view into regime `idx`'s parameters under
/// `policy`. `prev` is the previous regime's view, so walks (rotation,
/// phase) accumulate.
fn mutate(
    policy: ScenarioPolicy,
    base: &RegimeParams,
    prev: &RegimeParams,
    idx: usize,
    rng: &mut SplitMix64,
) -> RegimeParams {
    let mut p = *base;
    match policy {
        ScenarioPolicy::Stationary => {}
        ScenarioPolicy::RotationBurst => {
            let u = rng.next_f64();
            if idx % 2 == 1 {
                // Burst: well above the calibrated rate, wider pool window.
                p.intensity = 1.8 + 1.6 * u;
                p.pool_engagement = 1.3;
            } else {
                // Lull between bursts.
                p.intensity = 0.35 + 0.3 * u;
                p.pool_engagement = 0.8;
            }
            p.target_rotation = (rng.next_u64() % 5) as usize;
        }
        ScenarioPolicy::TargetMigration => {
            p.target_rotation = prev.target_rotation + 17 + (rng.next_u64() % 43) as usize;
            p.duration_persistence = 0.25 + 0.5 * rng.next_f64();
            p.duration_sigma = base.duration_sigma * (0.6 + 0.8 * rng.next_f64());
        }
        ScenarioPolicy::DiurnalDrift => {
            p.diurnal_shift = ((prev.diurnal_shift as u64 + 3 + rng.next_u64() % 5) % 24) as u8;
            p.intensity = 0.85 + 0.3 * rng.next_f64();
        }
        ScenarioPolicy::MultiVectorBlend => {
            // CE-CMS style pattern taxonomy, over [syn, udp, http, amp]:
            // volumetric (UDP floods + amplification), protocol (SYN state
            // exhaustion), application (HTTP request floods).
            const BLENDS: [[f64; 4]; 3] =
                [[0.5, 5.0, 0.5, 4.0], [6.0, 2.0, 0.5, 0.5], [0.5, 1.0, 7.0, 0.2]];
            p.vector_weights = BLENDS[(rng.next_u64() % 3) as usize];
            p.intensity = 0.9 + 0.4 * rng.next_f64();
            p.pool_engagement = 1.0 + 0.2 * rng.next_f64();
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyCatalog;

    fn profile() -> FamilyProfile {
        FamilyCatalog::small().profile(crate::family::FamilyId(0)).unwrap().clone()
    }

    #[test]
    fn stationary_has_one_calibrated_regime() {
        let p = profile();
        let s = RegimeSchedule::generate(ScenarioPolicy::Stationary, &p, 220, 42, 0);
        assert_eq!(s.regimes().len(), 1);
        let params = s.params_at(0);
        assert_eq!(params.intensity, 1.0);
        assert_eq!(params.diurnal_shift, 0);
        assert_eq!(params.target_rotation, 0);
        assert_eq!(params.duration_persistence, p.duration_persistence);
        assert_eq!(params.duration_sigma, p.duration_sigma);
        assert_eq!(params.pool_engagement, 1.0);
        assert_eq!(params.vector_weights, p.vector_weights);
        assert!(s.boundaries().is_empty());
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_slot() {
        let p = profile();
        for policy in ScenarioPolicy::ALL {
            let a = RegimeSchedule::generate(policy, &p, 220, 7, 3);
            let b = RegimeSchedule::generate(policy, &p, 220, 7, 3);
            assert_eq!(a, b, "{policy} not deterministic");
            if !policy.is_stationary() {
                let c = RegimeSchedule::generate(policy, &p, 220, 8, 3);
                assert_ne!(a, c, "{policy} ignores the seed");
                let d = RegimeSchedule::generate(policy, &p, 220, 7, 4);
                assert_ne!(a, d, "{policy} ignores the slot");
            }
        }
    }

    #[test]
    fn non_stationary_policies_switch_regimes() {
        let p = profile();
        for policy in &ScenarioPolicy::ALL[1..] {
            let s = RegimeSchedule::generate(*policy, &p, 220, 42, 0);
            assert!(s.regimes().len() >= 3, "{policy} produced {} regimes", s.regimes().len());
            assert_eq!(s.regimes()[0].params, p.stationary_regime());
            for w in s.regimes().windows(2) {
                assert!(w[0].start_day < w[1].start_day);
            }
            assert!(s.regimes().last().unwrap().start_day < 220);
        }
    }

    #[test]
    fn day_lookup_matches_regime_spans() {
        let p = profile();
        let s = RegimeSchedule::generate(ScenarioPolicy::RotationBurst, &p, 220, 42, 1);
        for (i, r) in s.regimes().iter().enumerate() {
            assert_eq!(s.index_at(r.start_day), i);
            if i > 0 {
                assert_eq!(s.index_at(r.start_day - 1), i - 1);
            }
        }
        assert_eq!(s.index_at(10_000), s.regimes().len() - 1);
    }

    #[test]
    fn policy_mutations_touch_their_axis() {
        let p = profile();
        let burst = RegimeSchedule::generate(ScenarioPolicy::RotationBurst, &p, 220, 42, 0);
        assert!(burst.regimes()[1..].iter().any(|r| r.params.intensity > 1.5));
        assert!(burst.regimes()[1..].iter().any(|r| r.params.intensity < 0.7));

        let mig = RegimeSchedule::generate(ScenarioPolicy::TargetMigration, &p, 220, 42, 0);
        let rotations: Vec<usize> =
            mig.regimes().iter().map(|r| r.params.target_rotation).collect();
        assert!(rotations.windows(2).all(|w| w[0] < w[1]), "rotation must accumulate");

        let drift = RegimeSchedule::generate(ScenarioPolicy::DiurnalDrift, &p, 220, 42, 0);
        assert!(drift.regimes()[1..].iter().any(|r| r.params.diurnal_shift != 0));
        assert!(drift.regimes().iter().all(|r| r.params.diurnal_shift < 24));

        let blend = RegimeSchedule::generate(ScenarioPolicy::MultiVectorBlend, &p, 220, 42, 0);
        assert!(blend.regimes()[1..].iter().any(|r| r.params.vector_weights != p.vector_weights));
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in ScenarioPolicy::ALL {
            assert_eq!(ScenarioPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(ScenarioPolicy::parse("chaos"), None);
        assert_eq!(ScenarioPolicy::default(), ScenarioPolicy::Stationary);
    }
}
