//! Botnet family profiles, calibrated to the paper's Table I.
//!
//! Each of the 10 most-active families in the corpus is described by an
//! activity level (average verified attacks per day), the number of days it
//! was active during the ~7-month window, and the coefficient of variation
//! of its daily attack counts. Those three numbers pin down the arrival
//! process (see [`crate::arrival`]); the remaining knobs (diurnal phase,
//! regional affinity, bot-pool shape, magnitude/duration laws, target
//! stickiness) encode the qualitative behaviors the paper reports: botnet
//! families "have both geolocation and target preferences" and "present
//! periodic recruiting and dormancy patterns" (§II-B).

use crate::{Result, TraceError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a botnet family within its [`FamilyCatalog`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FamilyId(pub usize);

impl fmt::Display for FamilyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "family#{}", self.0)
    }
}

/// Full behavioral profile of one botnet family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyProfile {
    /// Human-readable family name (e.g. `"DirtJumper"`).
    pub name: String,
    /// Average number of verified attacks per *active* day (Table I).
    pub avg_attacks_per_day: f64,
    /// Number of active days within the observation window (Table I).
    pub active_days: u32,
    /// Target coefficient of variation of daily attack counts (Table I).
    pub cv: f64,
    /// Hour of day at which launches peak.
    pub diurnal_peak: u8,
    /// Relative amplitude of the diurnal cycle, `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Relative weights over geographic regions for bot recruitment
    /// (longer than the region count is truncated; shorter is cycled).
    pub region_weights: Vec<f64>,
    /// Total number of bots the family controls across the window.
    pub pool_size: usize,
    /// Zipf exponent concentrating the pool onto few ASes (higher = more
    /// concentrated, which drives the paper's `A^s` feature up).
    pub as_concentration: f64,
    /// Mean number of distinct bots observed per attack.
    pub mean_magnitude: f64,
    /// Log-space σ of per-attack magnitude.
    pub magnitude_sigma: f64,
    /// Median attack duration in seconds.
    pub median_duration_secs: f64,
    /// Log-space σ of attack duration.
    pub duration_sigma: f64,
    /// AR(1) persistence of per-target log-durations (the spatial model's
    /// signal: consecutive attacks on one network have related durations).
    pub duration_persistence: f64,
    /// Zipf exponent of target selection (higher = stronger affinity to a
    /// few preferred targets).
    pub target_zipf: f64,
    /// Probability that an attack is a multistage follow-up on the previous
    /// target within the 30 s–24 h band (§III-A2).
    pub multistage_prob: f64,
    /// Probability that a (non-multistage) attack on a target launches near
    /// that target's preferred hour instead of a family-diurnal draw —
    /// botmasters schedule campaigns per victim ("the time when DDoS
    /// attacks were launched is usually determined by botmasters", §III-B2).
    pub hour_affinity: f64,
    /// Log-space jitter (in hours) around the target-preferred hour.
    pub hour_jitter: f64,
    /// Relative weights over [`crate::attack::AttackVector::ALL`] —
    /// families favor different traffic mechanisms (DirtJumper is an
    /// HTTP-flood tool; BlackEnergy mixes floods, etc.).
    pub vector_weights: [f64; 4],
    /// AR(1) persistence of the log daily-rate process.
    pub rate_phi: f64,
}

impl FamilyProfile {
    /// Log-space standard deviation of the daily-rate multiplier required
    /// to hit the profile's target CV.
    ///
    /// Daily counts are Poisson with a log-normal AR(1) rate, so
    /// `CV² = 1/m + (e^{σ²} − 1)`; solving for σ clamps at zero for
    /// families whose Table I CV is below the Poisson floor (AldiBot's
    /// 0.77 at mean 1.29 is slightly under-dispersed — a plain Poisson is
    /// the closest attainable process).
    pub fn rate_sigma(&self) -> f64 {
        let excess = self.cv * self.cv - 1.0 / self.avg_attacks_per_day;
        if excess <= 0.0 {
            0.0
        } else {
            (excess + 1.0).ln().sqrt()
        }
    }

    /// The activity window `(first_day, window_len, p_active)` within a
    /// trace of `total_days`: the family is eligible to attack on
    /// `window_len` consecutive days starting at `first_day`, and each of
    /// those days is active with probability `p_active`, reproducing the
    /// Table I active-day count in expectation.
    ///
    /// `slot` staggers different families' windows deterministically.
    pub fn activity_window(&self, total_days: u32, slot: usize) -> (u32, u32, f64) {
        let span = ((self.active_days as f64) / 0.92).ceil() as u32;
        let window_len = span.min(total_days);
        let p_active = (self.active_days as f64 / window_len as f64).min(1.0);
        let slack = total_days.saturating_sub(window_len);
        // Windows are anchored toward the end of the trace (offset shrinks
        // them from the back), so long-lived families remain active inside
        // the chronological test tail — without this, a family whose
        // window closes before the 80% cut contributes nothing to the
        // prediction experiments.
        let first_day = if slack == 0 { 0 } else { slack - (slot as u32 * 37) % (slack + 1) };
        (first_day, window_len, p_active)
    }

    /// Expected total number of attacks this family contributes.
    pub fn expected_attacks(&self) -> f64 {
        self.avg_attacks_per_day * self.active_days as f64
    }

    /// The regime-local parameter view equal to this profile's calibrated
    /// marginals — what every generation path consumes under
    /// [`crate::scenario::ScenarioPolicy::Stationary`].
    pub fn stationary_regime(&self) -> crate::scenario::RegimeParams {
        crate::scenario::RegimeParams {
            intensity: 1.0,
            diurnal_shift: 0,
            target_rotation: 0,
            duration_persistence: self.duration_persistence,
            duration_sigma: self.duration_sigma,
            pool_engagement: 1.0,
            vector_weights: self.vector_weights,
        }
    }

    /// The diurnal peak hour under a regime's phase shift.
    pub fn shifted_peak(&self, params: &crate::scenario::RegimeParams) -> u8 {
        ((self.diurnal_peak as u16 + params.diurnal_shift as u16) % 24) as u8
    }

    fn validate(&self) -> Result<()> {
        let bad = |detail: String| Err(TraceError::InvalidConfig { detail });
        if self.avg_attacks_per_day <= 0.0 {
            return bad(format!("{}: avg_attacks_per_day must be positive", self.name));
        }
        if self.active_days == 0 {
            return bad(format!("{}: active_days must be nonzero", self.name));
        }
        if self.cv <= 0.0 {
            return bad(format!("{}: cv must be positive", self.name));
        }
        if self.diurnal_peak >= 24 || !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return bad(format!("{}: bad diurnal parameters", self.name));
        }
        if self.pool_size == 0 || self.mean_magnitude <= 0.0 {
            return bad(format!("{}: pool/magnitude must be positive", self.name));
        }
        if self.mean_magnitude > self.pool_size as f64 {
            return bad(format!("{}: mean magnitude exceeds pool size", self.name));
        }
        if !(0.0..=1.0).contains(&self.multistage_prob) {
            return bad(format!("{}: multistage_prob must lie in [0, 1]", self.name));
        }
        if !(0.0..=1.0).contains(&self.hour_affinity) || self.hour_jitter < 0.0 {
            return bad(format!("{}: bad hour affinity parameters", self.name));
        }
        if !(0.0..1.0).contains(&self.rate_phi) || !(0.0..1.0).contains(&self.duration_persistence)
        {
            return bad(format!("{}: persistences must lie in [0, 1)", self.name));
        }
        if self.median_duration_secs <= 0.0 {
            return bad(format!("{}: duration must be positive", self.name));
        }
        if self.region_weights.is_empty() || self.region_weights.iter().any(|w| *w < 0.0) {
            return bad(format!("{}: region weights must be nonnegative and nonempty", self.name));
        }
        if self.vector_weights.iter().any(|w| *w < 0.0)
            || self.vector_weights.iter().sum::<f64>() <= 0.0
        {
            return bad(format!(
                "{}: vector weights must be nonnegative with positive sum",
                self.name
            ));
        }
        Ok(())
    }
}

/// An ordered collection of family profiles; [`FamilyId`]s index into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyCatalog {
    families: Vec<FamilyProfile>,
}

impl FamilyCatalog {
    /// Builds a catalog from profiles.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] when empty or any profile is
    /// invalid.
    pub fn new(families: Vec<FamilyProfile>) -> Result<Self> {
        if families.is_empty() {
            return Err(TraceError::InvalidConfig {
                detail: "catalog needs at least one family".to_string(),
            });
        }
        for f in &families {
            f.validate()?;
        }
        Ok(FamilyCatalog { families })
    }

    /// The 10 most-active families of the ICDCS 2017 corpus, with Table I
    /// activity numbers and qualitative knobs chosen per the paper's
    /// characterization (DirtJumper dominant and stable, Pandora bursty,
    /// YZF short-lived, etc.).
    pub fn icdcs2017() -> Self {
        // (name, avg/day, active days, CV, peak hr, diurnal amp, pool,
        //  mean magnitude, median duration s, target zipf, multistage p)
        type Spec = (&'static str, f64, u32, f64, u8, f64, usize, f64, f64, f64, f64);
        // YZF's 6.28 attacks/day is Table I's number, not an approximate 2π.
        #[allow(clippy::approx_constant)]
        let spec: [Spec; 10] = [
            ("AldiBot", 1.29, 204, 0.77, 9, 0.35, 900, 45.0, 1_500.0, 1.0, 0.25),
            ("BlackEnergy", 5.93, 220, 0.82, 14, 0.45, 3_200, 120.0, 2_400.0, 1.2, 0.35),
            ("Colddeath", 7.52, 118, 1.53, 20, 0.55, 1_800, 70.0, 1_200.0, 1.4, 0.30),
            ("Darkshell", 9.98, 210, 1.14, 11, 0.40, 2_600, 95.0, 1_800.0, 1.1, 0.30),
            ("DDoSer", 2.13, 211, 0.84, 16, 0.30, 1_100, 55.0, 2_000.0, 0.9, 0.20),
            ("DirtJumper", 144.30, 220, 0.77, 13, 0.50, 9_000, 160.0, 2_700.0, 1.3, 0.45),
            ("Nitol", 2.91, 208, 1.05, 7, 0.35, 1_300, 60.0, 1_600.0, 1.0, 0.25),
            ("Optima", 3.19, 220, 0.90, 15, 0.40, 1_500, 75.0, 2_100.0, 1.1, 0.30),
            ("Pandora", 40.08, 165, 1.27, 12, 0.55, 6_000, 140.0, 2_300.0, 1.35, 0.40),
            ("YZF", 6.28, 72, 1.41, 22, 0.60, 1_000, 50.0, 1_000.0, 1.5, 0.35),
        ];
        let families = spec
            .iter()
            .enumerate()
            .map(|(i, s)| FamilyProfile {
                name: s.0.to_string(),
                avg_attacks_per_day: s.1,
                active_days: s.2,
                cv: s.3,
                diurnal_peak: s.4,
                diurnal_amplitude: s.5,
                // Rotate regional affinity so families cluster differently.
                region_weights: region_affinity(i),
                pool_size: s.6,
                as_concentration: 1.0 + 0.08 * i as f64,
                mean_magnitude: s.7,
                magnitude_sigma: 0.25,
                median_duration_secs: s.8,
                duration_sigma: 0.8,
                duration_persistence: 0.6,
                target_zipf: s.9,
                multistage_prob: s.10,
                hour_affinity: 0.85,
                hour_jitter: 1.0,
                vector_weights: vector_affinity(s.0),
                rate_phi: 0.7,
            })
            .collect();
        FamilyCatalog::new(families).expect("built-in catalog is valid")
    }

    /// The internet-scale catalog: the ×100 stress configuration the
    /// ROADMAP asks for. Attack *volume* scales through the active-day
    /// counts (`expected_attacks = avg/day × active_days` is independent
    /// of the window length), so every family keeps its Table I per-day
    /// intensity, burstiness, pool shape and preferences — the trace is
    /// the same process observed over a ~60× longer window, yielding
    /// ~5 M attacks instead of ~50 k.
    pub fn internet() -> Self {
        let mut families = FamilyCatalog::icdcs2017().families;
        for f in &mut families {
            f.active_days *= 100;
        }
        FamilyCatalog::new(families).expect("internet catalog is valid")
    }

    /// A downscaled two-family catalog for fast unit tests: keeps the
    /// DirtJumper/Pandora contrast (very active & stable vs bursty) at a
    /// fraction of the volume.
    pub fn small() -> Self {
        let full = FamilyCatalog::icdcs2017();
        let mut dj = full.families[5].clone();
        let mut pa = full.families[8].clone();
        for f in [&mut dj, &mut pa] {
            f.avg_attacks_per_day = (f.avg_attacks_per_day / 8.0).max(1.0);
            f.active_days = (f.active_days / 4).max(10);
            f.pool_size /= 8;
            f.mean_magnitude = (f.mean_magnitude / 4.0).max(8.0);
        }
        FamilyCatalog::new(vec![dj, pa]).expect("small catalog is valid")
    }

    /// Profile lookup.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownFamily`] for an out-of-range id.
    pub fn profile(&self, id: FamilyId) -> Result<&FamilyProfile> {
        self.families.get(id.0).ok_or(TraceError::UnknownFamily(id))
    }

    /// Iterator over `(id, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FamilyId, &FamilyProfile)> + '_ {
        self.families.iter().enumerate().map(|(i, f)| (FamilyId(i), f))
    }

    /// Number of families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the catalog is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Ids of the `n` most active families by expected total attacks,
    /// descending. The §VII-A baseline comparison runs over the top five.
    pub fn most_active(&self, n: usize) -> Vec<FamilyId> {
        let mut ids: Vec<(FamilyId, f64)> =
            self.iter().map(|(id, f)| (id, f.expected_attacks())).collect();
        ids.sort_by(|a, b| b.1.total_cmp(&a.1));
        ids.into_iter().take(n).map(|(id, _)| id).collect()
    }

    /// The three families the paper's Figures 1–2 focus on: BlackEnergy,
    /// DirtJumper and Pandora — described as "the 3 most active families"
    /// with Table I's stability (CV) folded in; BlackEnergy, Pandora and
    /// DirtJumper are the "most stably active" families. Families absent
    /// from this catalog are skipped.
    pub fn figure_families(&self) -> Vec<FamilyId> {
        ["BlackEnergy", "DirtJumper", "Pandora"].iter().filter_map(|n| self.by_name(n)).collect()
    }

    /// Finds a family id by name (case-sensitive).
    pub fn by_name(&self, name: &str) -> Option<FamilyId> {
        self.families.iter().position(|f| f.name == name).map(FamilyId)
    }
}

/// Per-family attack-vector preferences, from the tooling each family is
/// known for: DirtJumper/Darkshell/Colddeath are HTTP-flood kits,
/// BlackEnergy and Optima mix volumetric floods, Pandora adds
/// amplification-style modes, etc. Order: [syn, udp, http, amplification].
fn vector_affinity(name: &str) -> [f64; 4] {
    match name {
        "DirtJumper" | "Darkshell" | "Colddeath" | "YZF" => [1.0, 1.0, 6.0, 0.2],
        "BlackEnergy" | "Optima" => [3.0, 4.0, 2.0, 0.5],
        "Pandora" => [2.0, 3.0, 3.0, 2.0],
        "Nitol" | "DDoSer" => [4.0, 3.0, 1.0, 0.3],
        _ => [2.0, 2.0, 2.0, 1.0],
    }
}

/// Region-affinity vector for family `i`: one dominant home region (by
/// family index) with mass decaying over the others.
fn region_affinity(i: usize) -> Vec<f64> {
    const REGIONS: usize = 6;
    let home = i % REGIONS;
    (0..REGIONS)
        .map(|r| {
            let dist =
                (r as isize - home as isize).unsigned_abs().min(REGIONS - (r.abs_diff(home)));
            match dist {
                0 => 6.0,
                1 => 2.0,
                _ => 0.6,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_families() {
        let c = FamilyCatalog::icdcs2017();
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
    }

    #[test]
    fn table1_numbers_present() {
        let c = FamilyCatalog::icdcs2017();
        let dj = c.profile(c.by_name("DirtJumper").unwrap()).unwrap();
        assert_eq!(dj.avg_attacks_per_day, 144.30);
        assert_eq!(dj.active_days, 220);
        assert_eq!(dj.cv, 0.77);
        let yzf = c.profile(c.by_name("YZF").unwrap()).unwrap();
        assert_eq!(yzf.active_days, 72);
    }

    #[test]
    fn most_active_ordering_matches_table1_totals() {
        let c = FamilyCatalog::icdcs2017();
        let top = c.most_active(5);
        let names: Vec<&str> = top.iter().map(|id| c.profile(*id).unwrap().name.as_str()).collect();
        assert_eq!(names, vec!["DirtJumper", "Pandora", "Darkshell", "BlackEnergy", "Colddeath"]);
        // AldiBot is the least active.
        let all = c.most_active(10);
        assert_eq!(c.profile(*all.last().unwrap()).unwrap().name, "AldiBot");
    }

    #[test]
    fn figure_families_are_the_paper_trio() {
        let c = FamilyCatalog::icdcs2017();
        let names: Vec<&str> =
            c.figure_families().iter().map(|id| c.profile(*id).unwrap().name.as_str()).collect();
        assert_eq!(names, vec!["BlackEnergy", "DirtJumper", "Pandora"]);
        // The small catalog only retains two of them.
        assert_eq!(FamilyCatalog::small().figure_families().len(), 2);
    }

    #[test]
    fn rate_sigma_calibration() {
        let c = FamilyCatalog::icdcs2017();
        // Overdispersed family: CV² > 1/m, so sigma > 0.
        let dj = c.profile(c.by_name("DirtJumper").unwrap()).unwrap();
        assert!(dj.rate_sigma() > 0.0);
        // Under-dispersed family: clamped to Poisson.
        let aldi = c.profile(c.by_name("AldiBot").unwrap()).unwrap();
        assert_eq!(aldi.rate_sigma(), 0.0);
        // Sanity: implied CV for DirtJumper ≈ target.
        let m = dj.avg_attacks_per_day;
        let implied_cv = (1.0 / m + (dj.rate_sigma().powi(2).exp() - 1.0)).sqrt();
        assert!((implied_cv - dj.cv).abs() < 0.01, "implied {implied_cv}");
    }

    #[test]
    fn activity_window_expectation_matches_active_days() {
        let c = FamilyCatalog::icdcs2017();
        for (i, (_, f)) in c.iter().enumerate() {
            let (start, len, p) = f.activity_window(220, i);
            assert!(start + len <= 220, "{}: window overflows", f.name);
            let expected = len as f64 * p;
            assert!(
                (expected - f.active_days as f64).abs() < 1.0,
                "{}: expected {} active days, profile says {}",
                f.name,
                expected,
                f.active_days
            );
        }
    }

    #[test]
    fn full_window_families_have_p_one() {
        let c = FamilyCatalog::icdcs2017();
        let dj = c.profile(c.by_name("DirtJumper").unwrap()).unwrap();
        let (start, len, p) = dj.activity_window(220, 5);
        assert_eq!((start, len), (0, 220));
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_family_rejected() {
        let c = FamilyCatalog::small();
        assert!(matches!(c.profile(FamilyId(99)), Err(TraceError::UnknownFamily(FamilyId(99)))));
        assert_eq!(c.by_name("NoSuchBot"), None);
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut p = FamilyCatalog::icdcs2017().profile(FamilyId(0)).unwrap().clone();
        p.avg_attacks_per_day = 0.0;
        assert!(FamilyCatalog::new(vec![p]).is_err());

        let mut p = FamilyCatalog::icdcs2017().profile(FamilyId(0)).unwrap().clone();
        p.mean_magnitude = p.pool_size as f64 + 1.0;
        assert!(FamilyCatalog::new(vec![p]).is_err());

        assert!(FamilyCatalog::new(vec![]).is_err());
    }

    #[test]
    fn region_affinity_has_dominant_home() {
        let w = region_affinity(2);
        assert_eq!(w.len(), 6);
        let max = w.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(w[2], max);
    }

    #[test]
    fn small_catalog_is_light() {
        let c = FamilyCatalog::small();
        assert_eq!(c.len(), 2);
        for (_, f) in c.iter() {
            assert!(f.expected_attacks() < 1_200.0);
        }
    }

    #[test]
    fn expected_attacks_total_near_corpus_size() {
        let c = FamilyCatalog::icdcs2017();
        let total: f64 = c.iter().map(|(_, f)| f.expected_attacks()).sum();
        // The paper's corpus holds 50,704 attacks across 23 families; the
        // 10 most active account for the bulk of it.
        assert!(total > 40_000.0 && total < 55_000.0, "total {total}");
    }

    #[test]
    fn internet_catalog_scales_volume_100x() {
        let base = FamilyCatalog::icdcs2017();
        let net = FamilyCatalog::internet();
        assert_eq!(net.len(), base.len());
        let base_total: f64 = base.iter().map(|(_, f)| f.expected_attacks()).sum();
        let net_total: f64 = net.iter().map(|(_, f)| f.expected_attacks()).sum();
        assert!((net_total / base_total - 100.0).abs() < 1e-9, "scale {}", net_total / base_total);
        // Per-day behavior is untouched — only the window grows.
        for ((_, b), (_, n)) in base.iter().zip(net.iter()) {
            assert_eq!(b.avg_attacks_per_day, n.avg_attacks_per_day);
            assert_eq!(b.pool_size, n.pool_size);
            assert_eq!(n.active_days, b.active_days * 100);
        }
    }
}
