//! Hourly monitoring reports — the raw data format of §II-C.
//!
//! "By tracking temporal activities of 23 different known botnet families,
//! the dataset captures a snapshot of each family every hour. … There are
//! 24 hourly reports per day for each botnet family. The set of bots or
//! controllers listed in each report are cumulative over the past 24
//! hours." This module renders a generated corpus back into that report
//! stream: for every (family, hour) it lists the distinct bots active in
//! the trailing 24-hour window, which is what a monitoring sensor would
//! have logged before any per-attack aggregation.

use crate::dataset::Corpus;
use crate::family::FamilyId;
use crate::time::{Timestamp, DAY, HOUR};
use crate::Result;
use ddos_astopo::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One hourly report for one family: the cumulative 24-hour bot view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HourlyReport {
    /// The reported family.
    pub family: FamilyId,
    /// Absolute hour index since trace start.
    pub hour: u64,
    /// Distinct bot IPs active in the trailing 24 hours.
    pub active_bots: u32,
    /// Distinct source ASes those bots sit in.
    pub active_asns: u32,
    /// Attacks launched by the family in the trailing 24 hours.
    pub attacks_24h: u32,
}

/// A family's full report stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportStream {
    /// The family.
    pub family: FamilyId,
    /// One report per hour of the observation window, chronological.
    pub reports: Vec<HourlyReport>,
}

impl ReportStream {
    /// The report covering `ts`, if inside the window.
    pub fn at(&self, ts: Timestamp) -> Option<&HourlyReport> {
        self.reports.get(ts.absolute_hour() as usize)
    }

    /// Peak 24-hour active-bot count.
    pub fn peak_bots(&self) -> u32 {
        self.reports.iter().map(|r| r.active_bots).max().unwrap_or(0)
    }
}

/// Builds the hourly report stream for one family.
///
/// Bots are attributed to every hour of their attack's lifetime (a sensor
/// sees the bot for as long as it fires), and the 24-hour cumulative view
/// is a sliding union over those hours.
///
/// # Errors
///
/// Returns [`crate::TraceError::UnknownFamily`] for a family not in the
/// catalog.
pub fn hourly_reports(corpus: &Corpus, family: FamilyId) -> Result<ReportStream> {
    corpus.catalog().profile(family)?;
    let horizon_hours = (corpus.days() as u64 + 2) * 24;

    // Per-hour sets of (bot, asn) pairs and attack counts.
    let mut per_hour_bots: BTreeMap<u64, BTreeSet<(u32, Asn)>> = BTreeMap::new();
    let mut per_hour_attacks: BTreeMap<u64, u32> = BTreeMap::new();
    for attack in corpus.attacks().iter().filter(|a| a.family == family) {
        let first = attack.start.absolute_hour();
        let last = attack.end().absolute_hour().min(horizon_hours.saturating_sub(1));
        *per_hour_attacks.entry(first).or_insert(0) += 1;
        for h in first..=last {
            let bucket = per_hour_bots.entry(h).or_default();
            for b in attack.bots() {
                bucket.insert((b.ip, b.asn));
            }
        }
    }

    // Sliding 24-hour union.
    let mut reports = Vec::with_capacity(horizon_hours as usize);
    for hour in 0..horizon_hours {
        let lo = hour.saturating_sub(DAY / HOUR - 1);
        let mut bots: BTreeSet<(u32, Asn)> = BTreeSet::new();
        let mut attacks = 0u32;
        for h in lo..=hour {
            if let Some(bucket) = per_hour_bots.get(&h) {
                bots.extend(bucket.iter().copied());
            }
            attacks += per_hour_attacks.get(&h).copied().unwrap_or(0);
        }
        let asns: BTreeSet<Asn> = bots.iter().map(|(_, a)| *a).collect();
        reports.push(HourlyReport {
            family,
            hour,
            active_bots: bots.len() as u32,
            active_asns: asns.len() as u32,
            attacks_24h: attacks,
        });
    }
    Ok(ReportStream { family, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), 171).generate().unwrap()
    }

    #[test]
    fn stream_covers_the_window_hourly() {
        let c = corpus();
        let fam = c.catalog().most_active(1)[0];
        let stream = hourly_reports(&c, fam).unwrap();
        assert_eq!(stream.reports.len() as u64, (c.days() as u64 + 2) * 24);
        for (i, r) in stream.reports.iter().enumerate() {
            assert_eq!(r.hour, i as u64);
            assert_eq!(r.family, fam);
        }
    }

    #[test]
    fn cumulative_counts_cover_active_attacks() {
        let c = corpus();
        let fam = c.catalog().most_active(1)[0];
        let stream = hourly_reports(&c, fam).unwrap();
        // Any hour with a running attack must report at least that
        // attack's bots.
        let attack = c.family_attacks(fam)[10];
        let report = stream.at(attack.start).expect("inside window");
        assert!(
            report.active_bots as usize >= attack.magnitude(),
            "report {} bots < attack magnitude {}",
            report.active_bots,
            attack.magnitude()
        );
        assert!(report.attacks_24h >= 1);
        assert!(report.active_asns >= attack.source_asns().len() as u32);
    }

    #[test]
    fn attacks_24h_matches_daily_intensity() {
        let c = corpus();
        let fam = c.catalog().most_active(1)[0];
        let stream = hourly_reports(&c, fam).unwrap();
        // The max 24h attack count must be ≥ the busiest calendar day's
        // count (the sliding window dominates any aligned day). Daily
        // counts are whole attack tallies, so the conversion is checked:
        // an unrepresentable maximum is a test failure, not a wrap.
        let busiest = c.daily_counts(fam).into_iter().fold(0.0f64, f64::max);
        assert!(busiest.is_finite() && busiest >= 0.0 && busiest.fract() == 0.0, "{busiest}");
        let busiest_day = busiest as u32;
        assert_eq!(busiest_day as f64, busiest, "busiest-day count {busiest} exceeds u32");
        let max_24h = stream.reports.iter().map(|r| r.attacks_24h).max().unwrap();
        assert!(max_24h >= busiest_day, "{max_24h} < busiest day {busiest_day}");
    }

    #[test]
    fn quiet_hours_report_zero() {
        let c = corpus();
        let fam = c.catalog().most_active(1)[0];
        let stream = hourly_reports(&c, fam).unwrap();
        // The window extends 2 days past the trace; its very end must be
        // attack-free for a 60-day small corpus.
        let tail = stream.reports.last().unwrap();
        assert_eq!(tail.attacks_24h, 0);
        assert_eq!(tail.active_bots, 0);
        assert!(stream.peak_bots() > 0);
    }

    #[test]
    fn unknown_family_rejected() {
        let c = corpus();
        assert!(hourly_reports(&c, FamilyId(99)).is_err());
    }
}
