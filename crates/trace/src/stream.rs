//! Constant-memory streaming corpus generation.
//!
//! [`CorpusStream`] yields the attacks of a family-partitioned corpus in
//! final sorted order **without materializing the corpus**: each family
//! draws from its own [`crate::generator::family_seed`]-derived RNG
//! stream, generation proceeds in bounded windows of days fanned across
//! the deterministic sharded executor, and a small reorder buffer emits
//! records as soon as no family can still produce an earlier one. The
//! yielded sequence is bit-identical to
//! [`crate::TraceGenerator::generate_partitioned`] for the same seed at
//! any worker count or chunk size — the executor reduces per-family
//! results in index order, so parallelism is a throughput knob, not a
//! semantic one.
//!
//! Memory is bounded by the substrate (topology, address plan, bot pools)
//! plus the reorder buffer, whose size is governed by the chunk width and
//! the 24-hour multistage band — not by the corpus length. That is what
//! makes [`crate::CorpusConfig::internet`] (≈5 M attacks) tractable.

use crate::arrival::{place_within_day_in_regime, ArrivalSchedule, DayPlan};
use crate::attack::{AttackId, AttackRecord};
use crate::bots::BotPool;
use crate::family::{FamilyCatalog, FamilyId, FamilyProfile};
use crate::generator::{
    build_attack, build_substrate, family_pickers, family_seed, pick_target, preferred_launch,
    CorpusConfig, DurationState, Substrate,
};
use crate::scenario::RegimeSchedule;
use crate::targets::{TargetId, TargetPopulation};
use crate::time::{Timestamp, DAY};
use crate::{Result, TraceError};
use ddos_astopo::ipmap::{IpAsnMap, Prefix};
use ddos_astopo::{AsGraph, Asn};
use ddos_stats::distributions::Categorical;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Resumable single-family generation state.
///
/// Runs the same per-day loop as the legacy generator, but against a
/// family-private RNG, so it can be advanced in day windows and in any
/// interleaving with other families without changing its output. Records
/// leave with their per-family sequence number stashed in `id`; the
/// consumer re-assigns dense global ids after the merge sort.
pub(crate) struct FamilyGen {
    family: FamilyId,
    profile: FamilyProfile,
    days: u32,
    pool: BotPool,
    schedule: ArrivalSchedule,
    next_plan: usize,
    /// Precomputed regime timeline: a pure function of `(policy, profile,
    /// seed, slot)`, looked up by plan day, so regime state advances
    /// identically no matter how `advance` calls chunk the window.
    regimes: RegimeSchedule,
    regime_idx: usize,
    target_picker: Categorical,
    vector_picker: Categorical,
    targets: Arc<TargetPopulation>,
    rng: StdRng,
    prev: Option<(TargetId, Timestamp)>,
    duration_state: DurationState,
    seq: u64,
}

impl FamilyGen {
    /// Builds the family's pool, schedule and pickers from its derived
    /// seed. Does not touch the caller's RNG.
    pub(crate) fn new(
        family: FamilyId,
        profile: FamilyProfile,
        config: &CorpusConfig,
        seed: u64,
        topology: &AsGraph,
        allocations: &BTreeMap<Asn, Vec<Prefix>>,
        targets: Arc<TargetPopulation>,
    ) -> Result<Self> {
        let slot = family.0;
        // The regime timeline draws from its own splitmix64 stream, never
        // from the family RNG, so the policy cannot shift generation draws
        // it does not parameterize.
        let regimes = RegimeSchedule::generate(config.scenario, &profile, config.days, seed, slot);
        let mut rng = StdRng::seed_from_u64(family_seed(seed, slot));
        let pool = BotPool::recruit(topology, allocations, &profile, slot, &mut rng)?;
        let schedule =
            ArrivalSchedule::generate_in_scenario(&profile, config.days, slot, &regimes, &mut rng)?;
        let (target_picker, vector_picker) =
            family_pickers(&profile, slot, &targets, &regimes.regimes()[0].params)?;
        Ok(FamilyGen {
            family,
            profile,
            days: config.days,
            pool,
            schedule,
            next_plan: 0,
            regimes,
            regime_idx: 0,
            target_picker,
            vector_picker,
            targets,
            rng,
            prev: None,
            duration_state: DurationState::new(),
            seq: 0,
        })
    }

    /// Generates every attack from plans with `day < until_day`, appending
    /// to `out`. Each record's `id` carries the per-family sequence number
    /// (the stable-sort tiebreak); the caller assigns real ids later.
    pub(crate) fn advance(&mut self, until_day: u32, out: &mut Vec<AttackRecord>) -> Result<()> {
        while let Some(plan) = self.schedule.days().get(self.next_plan) {
            let plan: DayPlan = *plan;
            if plan.day >= until_day {
                break;
            }
            self.next_plan += 1;
            // Advance the regime cursor to the plan's day. Plans are
            // chronological and the timeline is precomputed, so this is
            // invariant to how callers chunk `until_day` — the safe-
            // emission bound never interacts with regime state.
            let idx = self.regimes.index_at(plan.day);
            if idx != self.regime_idx {
                self.regime_idx = idx;
                let (t, v) = family_pickers(
                    &self.profile,
                    self.family.0,
                    &self.targets,
                    &self.regimes.regimes()[idx].params,
                )?;
                self.target_picker = t;
                self.vector_picker = v;
            }
            let params = self.regimes.regimes()[self.regime_idx].params;
            let launches = place_within_day_in_regime(
                plan.day,
                plan.count,
                &self.profile,
                &params,
                &mut self.rng,
            )?;
            let activity = (plan.rate / self.profile.avg_attacks_per_day).powf(0.8);
            for ts in launches {
                let (target_id, mut start, multistage) = pick_target(
                    self.days,
                    self.profile.multistage_prob,
                    &self.prev,
                    ts,
                    &self.target_picker,
                    &mut self.rng,
                )?;
                if !multistage && self.rng.gen_bool(self.profile.hour_affinity) {
                    start =
                        preferred_launch(start, target_id, &self.profile, &params, &mut self.rng);
                }
                let target = self.targets.target(target_id)?;
                let vector =
                    crate::attack::AttackVector::ALL[self.vector_picker.sample(&mut self.rng)];
                let mut record = build_attack(
                    self.family,
                    &self.profile,
                    &params,
                    &self.pool,
                    target_id,
                    target.asn,
                    start,
                    activity,
                    multistage,
                    vector,
                    &mut self.duration_state,
                    &mut self.rng,
                )?;
                record.id = AttackId(self.seq);
                self.seq += 1;
                self.prev = Some((target_id, start));
                out.push(record);
            }
        }
        Ok(())
    }

    /// A lower bound (seconds) on the start of any attack this family can
    /// still produce: the next unprocessed plan's day floor, tightened by
    /// the earliest possible multistage follow-up (30 s after the last
    /// launch). `u64::MAX` once the schedule is exhausted — a multistage
    /// attack only ever rides on a scheduled launch.
    pub(crate) fn start_lower_bound(&self) -> u64 {
        let Some(plan) = self.schedule.days().get(self.next_plan) else {
            return u64::MAX;
        };
        let plan_floor = plan.day as u64 * DAY;
        match self.prev {
            Some((_, prev_start)) => plan_floor.min(prev_start.as_secs() + 30),
            None => plan_floor,
        }
    }
}

/// Tuning knobs for [`CorpusStream`]. The defaults (64-day chunks, auto
/// parallelism) are right for anything bigger than a toy corpus; smaller
/// chunks shrink the reorder buffer at the cost of more rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Days generated per family per round (at least 1).
    pub chunk_days: u32,
    /// Worker threads for the per-family fan-out; `None` = all cores.
    /// **Never changes the output** — results reduce in family order.
    pub parallelism: Option<usize>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { chunk_days: 64, parallelism: None }
    }
}

/// A pull-based iterator over a family-partitioned corpus in final order.
///
/// Yields `Result<AttackRecord>` with dense chronological ids, exactly as
/// [`crate::TraceGenerator::generate_partitioned`] would store them, while
/// holding only one generation window plus a reorder buffer in memory. The
/// substrate (catalog, topology, address plan, targets) stays resident and
/// is exposed through accessors so consumers can resolve records without a
/// [`crate::Corpus`].
///
/// # Example
///
/// ```
/// use ddos_trace::stream::CorpusStream;
/// use ddos_trace::CorpusConfig;
///
/// # fn main() -> Result<(), ddos_trace::TraceError> {
/// let n = CorpusStream::new(CorpusConfig::small(), 7)?
///     .map(|r| r.map(|_| 1u64))
///     .sum::<Result<u64, _>>()?;
/// assert!(n > 0);
/// # Ok(())
/// # }
/// ```
pub struct CorpusStream {
    families: Vec<Mutex<FamilyGen>>,
    catalog: FamilyCatalog,
    topology: AsGraph,
    ipmap: IpAsnMap,
    targets: Arc<TargetPopulation>,
    days: u32,
    options: StreamOptions,
    next_day: u32,
    pending: Vec<AttackRecord>,
    ready: std::collections::VecDeque<AttackRecord>,
    next_id: u64,
    fused: bool,
}

impl CorpusStream {
    /// Opens a stream with default [`StreamOptions`].
    ///
    /// # Errors
    ///
    /// Propagates configuration, topology and sampling errors.
    pub fn new(config: CorpusConfig, seed: u64) -> Result<Self> {
        CorpusStream::with_options(config, seed, StreamOptions::default())
    }

    /// Opens a stream with explicit chunking and parallelism.
    ///
    /// # Errors
    ///
    /// Propagates configuration, topology and sampling errors; rejects a
    /// zero `chunk_days`.
    pub fn with_options(config: CorpusConfig, seed: u64, options: StreamOptions) -> Result<Self> {
        if options.chunk_days == 0 {
            return Err(TraceError::InvalidConfig {
                detail: "chunk_days must be nonzero".to_string(),
            });
        }
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let Substrate { topology, ipmap, allocations, targets } =
            build_substrate(&config, seed, &mut rng)?;
        let targets = Arc::new(targets);
        let families = config
            .catalog
            .iter()
            .map(|(family_id, profile)| {
                FamilyGen::new(
                    family_id,
                    profile.clone(),
                    &config,
                    seed,
                    &topology,
                    &allocations,
                    Arc::clone(&targets),
                )
                .map(Mutex::new)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CorpusStream {
            families,
            catalog: config.catalog,
            topology,
            ipmap,
            targets,
            days: config.days,
            options,
            next_day: 0,
            pending: Vec::new(),
            ready: std::collections::VecDeque::new(),
            next_id: 0,
            fused: false,
        })
    }

    /// The family catalog behind the stream.
    pub fn catalog(&self) -> &FamilyCatalog {
        &self.catalog
    }

    /// The synthetic AS-level topology.
    pub fn topology(&self) -> &AsGraph {
        &self.topology
    }

    /// Longest-prefix IP → AS mapping.
    pub fn ip_map(&self) -> &IpAsnMap {
        &self.ipmap
    }

    /// The target population.
    pub fn targets(&self) -> &TargetPopulation {
        &self.targets
    }

    /// Observation-window length in days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Records yielded so far.
    pub fn emitted(&self) -> u64 {
        self.next_id
    }

    /// Runs one generation round (every family advances `chunk_days`),
    /// then drains every pending record that no family can still precede
    /// into the ready queue in final order.
    fn pump(&mut self) -> Result<()> {
        let exhausted = self.next_day >= self.days;
        let bound = if exhausted {
            // No family can produce anything further; drain everything.
            self.families
                .iter()
                .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).start_lower_bound())
                .min()
                .unwrap_or(u64::MAX)
        } else {
            let until = self.days.min(self.next_day.saturating_add(self.options.chunk_days));
            let results = ddos_stats::exec::map_indexed(
                &self.families,
                self.options.parallelism,
                |_, slot: &Mutex<FamilyGen>| -> Result<(Vec<AttackRecord>, u64)> {
                    let mut fam = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    let mut out = Vec::new();
                    fam.advance(until, &mut out)?;
                    Ok((out, fam.start_lower_bound()))
                },
            );
            self.next_day = until;
            // Index-order reduction: family 0's chunk lands before family
            // 1's regardless of which worker finished first.
            let mut bound = u64::MAX;
            for result in results {
                let (records, lb) = result?;
                self.pending.extend(records);
                bound = bound.min(lb);
            }
            bound
        };

        // Final order is the stable sort by (start, family, target) over
        // catalog-order concatenation; the per-family sequence number
        // stashed in `id` reproduces that stability under an unstable key.
        self.pending.sort_unstable_by_key(|a| (a.start, a.family, a.target, a.id));
        let cut = self.pending.partition_point(|a| a.start.as_secs() < bound);
        for mut record in self.pending.drain(..cut) {
            record.id = AttackId(self.next_id);
            self.next_id += 1;
            self.ready.push_back(record);
        }
        Ok(())
    }
}

impl Iterator for CorpusStream {
    type Item = Result<AttackRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        loop {
            if let Some(record) = self.ready.pop_front() {
                return Some(Ok(record));
            }
            if self.next_day >= self.days && self.pending.is_empty() {
                self.fused = true;
                return None;
            }
            if let Err(e) = self.pump() {
                self.fused = true;
                return Some(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;

    fn reference(seed: u64) -> crate::Corpus {
        TraceGenerator::new(CorpusConfig::small(), seed).generate_partitioned().unwrap()
    }

    #[test]
    fn zero_chunk_days_is_a_typed_error() {
        let opts = StreamOptions { chunk_days: 0, parallelism: None };
        let Err(err) = CorpusStream::with_options(CorpusConfig::small(), 1, opts) else {
            panic!("zero chunk_days accepted");
        };
        assert!(matches!(
            err,
            crate::TraceError::InvalidConfig { ref detail } if detail.contains("chunk_days")
        ));
    }

    #[test]
    fn stream_matches_partitioned_generation_bit_for_bit() {
        let corpus = reference(42);
        let streamed: Vec<AttackRecord> =
            CorpusStream::new(CorpusConfig::small(), 42).unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(streamed.len(), corpus.len());
        for (s, c) in streamed.iter().zip(corpus.attacks()) {
            assert_eq!(s, c);
        }
    }

    #[test]
    fn worker_count_and_chunking_never_change_the_stream() {
        let baseline: Vec<AttackRecord> =
            CorpusStream::new(CorpusConfig::small(), 9).unwrap().collect::<Result<_>>().unwrap();
        for (chunk_days, parallelism) in [(1, Some(1)), (7, Some(4)), (200, Some(2)), (13, None)] {
            let opts = StreamOptions { chunk_days, parallelism };
            let run: Vec<AttackRecord> = CorpusStream::with_options(CorpusConfig::small(), 9, opts)
                .unwrap()
                .collect::<Result<_>>()
                .unwrap();
            assert_eq!(run, baseline, "diverged at chunk={chunk_days} par={parallelism:?}");
        }
    }

    #[test]
    fn stream_is_chronological_with_dense_ids() {
        let records: Vec<AttackRecord> =
            CorpusStream::new(CorpusConfig::small(), 11).unwrap().collect::<Result<_>>().unwrap();
        assert!(!records.is_empty());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, AttackId(i as u64));
            assert!(r.is_consistent());
        }
        for w in records.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn partitioned_generation_is_deterministic_and_plausible() {
        let a = reference(5);
        let b = reference(5);
        assert_eq!(a, b);
        let expected: f64 =
            CorpusConfig::small().catalog.iter().map(|(_, f)| f.expected_attacks()).sum();
        let n = a.len() as f64;
        assert!(n > expected * 0.5 && n < expected * 1.6, "{n} vs {expected}");
    }

    #[test]
    fn zero_chunk_rejected() {
        let opts = StreamOptions { chunk_days: 0, parallelism: None };
        assert!(CorpusStream::with_options(CorpusConfig::small(), 1, opts).is_err());
    }
}
