//! Attack records: the unit of the corpus.
//!
//! In the source dataset "a DDoS attack is labeled with a unique DDoS
//! identifier, corresponding to an attack by given DDoS malware family on a
//! given target" (§II-C), carries a start timestamp and a `Duration`
//! attribute, and is associated with the set of bot IPs observed in hourly
//! snapshots. [`AttackRecord`] carries exactly those fields.

use crate::family::FamilyId;
use crate::targets::TargetId;
use crate::time::Timestamp;
use ddos_astopo::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

/// The traffic mechanism an attack uses — the paper's introduction calls
/// out "the attack traffic mechanisms utilized to launch the attacks" as
/// one axis of DDoS complexity, and real families mix floods and
/// amplification differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// TCP SYN flood (state exhaustion).
    SynFlood,
    /// Raw UDP volumetric flood.
    UdpFlood,
    /// Application-layer HTTP request flood.
    HttpFlood,
    /// Reflected/amplified traffic (DNS/NTP-style).
    Amplification,
}

impl AttackVector {
    /// All vectors, in stable order (the categorical-sampler index order).
    pub const ALL: [AttackVector; 4] = [
        AttackVector::SynFlood,
        AttackVector::UdpFlood,
        AttackVector::HttpFlood,
        AttackVector::Amplification,
    ];

    /// Stable index into [`AttackVector::ALL`].
    pub fn index(self) -> usize {
        match self {
            AttackVector::SynFlood => 0,
            AttackVector::UdpFlood => 1,
            AttackVector::HttpFlood => 2,
            AttackVector::Amplification => 3,
        }
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackVector::SynFlood => write!(f, "syn-flood"),
            AttackVector::UdpFlood => write!(f, "udp-flood"),
            AttackVector::HttpFlood => write!(f, "http-flood"),
            AttackVector::Amplification => write!(f, "amplification"),
        }
    }
}

/// Unique identifier of a verified DDoS attack (the paper's "DDoS ID").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AttackId(pub u64);

impl fmt::Display for AttackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ddos#{}", self.0)
    }
}

/// One bot observed participating in an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BotObservation {
    /// The bot's IPv4 address (host order).
    pub ip: u32,
    /// The AS hosting the bot (as the commercial IP→ASN mapping would
    /// report it).
    pub asn: Asn,
}

/// A verified DDoS attack record.
///
/// The bot list is private behind [`AttackRecord::bots`] /
/// [`AttackRecord::bots_mut`] so the per-AS histogram — the hottest
/// derived quantity in the spatial models — can be memoized safely:
/// mutation through `bots_mut` drops the cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackRecord {
    /// Unique attack identifier.
    pub id: AttackId,
    /// Launching botnet family.
    pub family: FamilyId,
    /// The victim.
    pub target: TargetId,
    /// The victim's AS (the paper's `T_l` variable).
    pub target_asn: Asn,
    /// Launch time.
    pub start: Timestamp,
    /// Attack duration in seconds (the paper's `Duration` attribute / `T^d`).
    pub duration_secs: u64,
    /// Distinct bots observed over the attack's lifetime.
    bots: Vec<BotObservation>,
    /// Hourly snapshots of the *cumulative* number of distinct bots seen by
    /// the end of each hour of the attack (at least one snapshot).
    pub hourly_bot_counts: Vec<u32>,
    /// Whether this record was flagged as a multistage follow-up: same
    /// target as the family's previous attack, 30 s–24 h after it.
    pub multistage: bool,
    /// The traffic mechanism used.
    pub vector: AttackVector,
    /// Memoized bots-per-AS histogram, sorted ascending by ASN. Pure
    /// derived data: skipped by serde and `PartialEq`, invalidated by
    /// [`AttackRecord::bots_mut`].
    #[serde(skip)]
    hist: OnceLock<Vec<(Asn, u32)>>,
}

impl PartialEq for AttackRecord {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.family == other.family
            && self.target == other.target
            && self.target_asn == other.target_asn
            && self.start == other.start
            && self.duration_secs == other.duration_secs
            && self.bots == other.bots
            && self.hourly_bot_counts == other.hourly_bot_counts
            && self.multistage == other.multistage
            && self.vector == other.vector
    }
}

impl AttackRecord {
    /// Assembles a record from its observed fields.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: AttackId,
        family: FamilyId,
        target: TargetId,
        target_asn: Asn,
        start: Timestamp,
        duration_secs: u64,
        bots: Vec<BotObservation>,
        hourly_bot_counts: Vec<u32>,
        multistage: bool,
        vector: AttackVector,
    ) -> Self {
        AttackRecord {
            id,
            family,
            target,
            target_asn,
            start,
            duration_secs,
            bots,
            hourly_bot_counts,
            multistage,
            vector,
            hist: OnceLock::new(),
        }
    }

    /// The distinct bots observed over the attack's lifetime.
    pub fn bots(&self) -> &[BotObservation] {
        &self.bots
    }

    /// Mutable access to the bot list; drops the memoized histogram so
    /// derived queries stay consistent.
    pub fn bots_mut(&mut self) -> &mut Vec<BotObservation> {
        self.hist.take();
        &mut self.bots
    }

    /// Magnitude of the attack: number of distinct participating bots
    /// (the paper measures attack magnitude by bot count, after Mao et al.).
    pub fn magnitude(&self) -> usize {
        self.bots.len()
    }

    /// The attack's end time.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration_secs
    }

    /// Distinct source ASes, ascending.
    pub fn source_asns(&self) -> Vec<Asn> {
        let set: BTreeSet<Asn> = self.bots.iter().map(|b| b.asn).collect();
        set.into_iter().collect()
    }

    /// Histogram of bots per source AS, ascending by ASN. Computed once
    /// per record and memoized; lookups can `binary_search` by ASN.
    pub fn asn_histogram(&self) -> &[(Asn, u32)] {
        self.hist.get_or_init(|| {
            let mut counts: std::collections::BTreeMap<Asn, u32> =
                std::collections::BTreeMap::new();
            for b in &self.bots {
                *counts.entry(b.asn).or_insert(0) += 1;
            }
            counts.into_iter().collect()
        })
    }

    /// Internal consistency check used by generator tests and property
    /// tests: snapshots must be monotone, end at the full magnitude, and
    /// cover the duration.
    pub fn is_consistent(&self) -> bool {
        if self.hourly_bot_counts.is_empty() {
            return false;
        }
        if self.hourly_bot_counts.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if *self.hourly_bot_counts.last().expect("nonempty") as usize != self.bots.len() {
            return false;
        }
        let hours_needed = self.duration_secs.div_ceil(crate::time::HOUR).max(1);
        self.hourly_bot_counts.len() as u64 == hours_needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttackRecord {
        AttackRecord::new(
            AttackId(7),
            FamilyId(0),
            TargetId(3),
            Asn(500),
            Timestamp::from_day_hour(2, 10),
            5_400, // 1.5 h → 2 snapshots
            vec![
                BotObservation { ip: 1, asn: Asn(10) },
                BotObservation { ip: 2, asn: Asn(10) },
                BotObservation { ip: 3, asn: Asn(20) },
            ],
            vec![2, 3],
            false,
            AttackVector::SynFlood,
        )
    }

    #[test]
    fn magnitude_counts_bots() {
        assert_eq!(sample().magnitude(), 3);
    }

    #[test]
    fn end_adds_duration() {
        let a = sample();
        assert_eq!(a.end().as_secs(), a.start.as_secs() + 5_400);
    }

    #[test]
    fn source_asns_dedup_sorted() {
        assert_eq!(sample().source_asns(), vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn asn_histogram_counts() {
        assert_eq!(sample().asn_histogram(), &[(Asn(10), 2), (Asn(20), 1)]);
    }

    #[test]
    fn histogram_cache_invalidated_by_mutation() {
        let mut a = sample();
        assert_eq!(a.asn_histogram(), &[(Asn(10), 2), (Asn(20), 1)]);
        a.bots_mut().push(BotObservation { ip: 4, asn: Asn(20) });
        assert_eq!(a.asn_histogram(), &[(Asn(10), 2), (Asn(20), 2)]);
        a.hourly_bot_counts = vec![2, 4];
        assert!(a.is_consistent());
    }

    #[test]
    fn consistency_accepts_valid_record() {
        assert!(sample().is_consistent());
    }

    #[test]
    fn consistency_rejects_bad_snapshots() {
        let mut a = sample();
        a.hourly_bot_counts = vec![3, 2];
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts = vec![2, 2]; // final != magnitude
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts = vec![3]; // wrong snapshot count for 1.5h
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts.clear();
        assert!(!a.is_consistent());
    }

    #[test]
    fn display_ids() {
        assert_eq!(AttackId(5).to_string(), "ddos#5");
    }

    #[test]
    fn vector_index_round_trips() {
        for (i, v) in AttackVector::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert_eq!(AttackVector::Amplification.to_string(), "amplification");
    }
}
