//! Attack records: the unit of the corpus.
//!
//! In the source dataset "a DDoS attack is labeled with a unique DDoS
//! identifier, corresponding to an attack by given DDoS malware family on a
//! given target" (§II-C), carries a start timestamp and a `Duration`
//! attribute, and is associated with the set of bot IPs observed in hourly
//! snapshots. [`AttackRecord`] carries exactly those fields.

use crate::family::FamilyId;
use crate::targets::TargetId;
use crate::time::Timestamp;
use ddos_astopo::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The traffic mechanism an attack uses — the paper's introduction calls
/// out "the attack traffic mechanisms utilized to launch the attacks" as
/// one axis of DDoS complexity, and real families mix floods and
/// amplification differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// TCP SYN flood (state exhaustion).
    SynFlood,
    /// Raw UDP volumetric flood.
    UdpFlood,
    /// Application-layer HTTP request flood.
    HttpFlood,
    /// Reflected/amplified traffic (DNS/NTP-style).
    Amplification,
}

impl AttackVector {
    /// All vectors, in stable order (the categorical-sampler index order).
    pub const ALL: [AttackVector; 4] = [
        AttackVector::SynFlood,
        AttackVector::UdpFlood,
        AttackVector::HttpFlood,
        AttackVector::Amplification,
    ];

    /// Stable index into [`AttackVector::ALL`].
    pub fn index(self) -> usize {
        AttackVector::ALL.iter().position(|v| *v == self).expect("member of ALL")
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackVector::SynFlood => write!(f, "syn-flood"),
            AttackVector::UdpFlood => write!(f, "udp-flood"),
            AttackVector::HttpFlood => write!(f, "http-flood"),
            AttackVector::Amplification => write!(f, "amplification"),
        }
    }
}

/// Unique identifier of a verified DDoS attack (the paper's "DDoS ID").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AttackId(pub u64);

impl fmt::Display for AttackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ddos#{}", self.0)
    }
}

/// One bot observed participating in an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BotObservation {
    /// The bot's IPv4 address (host order).
    pub ip: u32,
    /// The AS hosting the bot (as the commercial IP→ASN mapping would
    /// report it).
    pub asn: Asn,
}

/// A verified DDoS attack record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRecord {
    /// Unique attack identifier.
    pub id: AttackId,
    /// Launching botnet family.
    pub family: FamilyId,
    /// The victim.
    pub target: TargetId,
    /// The victim's AS (the paper's `T_l` variable).
    pub target_asn: Asn,
    /// Launch time.
    pub start: Timestamp,
    /// Attack duration in seconds (the paper's `Duration` attribute / `T^d`).
    pub duration_secs: u64,
    /// Distinct bots observed over the attack's lifetime.
    pub bots: Vec<BotObservation>,
    /// Hourly snapshots of the *cumulative* number of distinct bots seen by
    /// the end of each hour of the attack (at least one snapshot).
    pub hourly_bot_counts: Vec<u32>,
    /// Whether this record was flagged as a multistage follow-up: same
    /// target as the family's previous attack, 30 s–24 h after it.
    pub multistage: bool,
    /// The traffic mechanism used.
    pub vector: AttackVector,
}

impl AttackRecord {
    /// Magnitude of the attack: number of distinct participating bots
    /// (the paper measures attack magnitude by bot count, after Mao et al.).
    pub fn magnitude(&self) -> usize {
        self.bots.len()
    }

    /// The attack's end time.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration_secs
    }

    /// Distinct source ASes, ascending.
    pub fn source_asns(&self) -> Vec<Asn> {
        let set: BTreeSet<Asn> = self.bots.iter().map(|b| b.asn).collect();
        set.into_iter().collect()
    }

    /// Histogram of bots per source AS, ascending by ASN.
    pub fn asn_histogram(&self) -> Vec<(Asn, usize)> {
        let mut counts: std::collections::BTreeMap<Asn, usize> = std::collections::BTreeMap::new();
        for b in &self.bots {
            *counts.entry(b.asn).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Internal consistency check used by generator tests and property
    /// tests: snapshots must be monotone, end at the full magnitude, and
    /// cover the duration.
    pub fn is_consistent(&self) -> bool {
        if self.hourly_bot_counts.is_empty() {
            return false;
        }
        if self.hourly_bot_counts.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if *self.hourly_bot_counts.last().expect("nonempty") as usize != self.bots.len() {
            return false;
        }
        let hours_needed = self.duration_secs.div_ceil(crate::time::HOUR).max(1);
        self.hourly_bot_counts.len() as u64 == hours_needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttackRecord {
        AttackRecord {
            id: AttackId(7),
            family: FamilyId(0),
            target: TargetId(3),
            target_asn: Asn(500),
            start: Timestamp::from_day_hour(2, 10),
            duration_secs: 5_400, // 1.5 h → 2 snapshots
            bots: vec![
                BotObservation { ip: 1, asn: Asn(10) },
                BotObservation { ip: 2, asn: Asn(10) },
                BotObservation { ip: 3, asn: Asn(20) },
            ],
            hourly_bot_counts: vec![2, 3],
            multistage: false,
            vector: AttackVector::SynFlood,
        }
    }

    #[test]
    fn magnitude_counts_bots() {
        assert_eq!(sample().magnitude(), 3);
    }

    #[test]
    fn end_adds_duration() {
        let a = sample();
        assert_eq!(a.end().as_secs(), a.start.as_secs() + 5_400);
    }

    #[test]
    fn source_asns_dedup_sorted() {
        assert_eq!(sample().source_asns(), vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn asn_histogram_counts() {
        assert_eq!(sample().asn_histogram(), vec![(Asn(10), 2), (Asn(20), 1)]);
    }

    #[test]
    fn consistency_accepts_valid_record() {
        assert!(sample().is_consistent());
    }

    #[test]
    fn consistency_rejects_bad_snapshots() {
        let mut a = sample();
        a.hourly_bot_counts = vec![3, 2];
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts = vec![2, 2]; // final != magnitude
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts = vec![3]; // wrong snapshot count for 1.5h
        assert!(!a.is_consistent());

        let mut a = sample();
        a.hourly_bot_counts.clear();
        assert!(!a.is_consistent());
    }

    #[test]
    fn display_ids() {
        assert_eq!(AttackId(5).to_string(), "ddos#5");
    }

    #[test]
    fn vector_index_round_trips() {
        for (i, v) in AttackVector::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert_eq!(AttackVector::Amplification.to_string(), "amplification");
    }
}
