//! The end-to-end trace engine: topology → pools → schedules → attacks.

use crate::arrival::{place_within_day_in_regime, ArrivalSchedule};
use crate::attack::{AttackId, AttackRecord};
use crate::bots::BotPool;
use crate::dataset::Corpus;
use crate::family::{FamilyCatalog, FamilyId};
use crate::scenario::{RegimeParams, RegimeSchedule, ScenarioPolicy};
use crate::targets::{TargetId, TargetPopulation};
use crate::time::{Timestamp, DAY, HOUR};
use crate::{Result, TraceError};
use ddos_astopo::gen::{TopologyConfig, TopologyGenerator};
use ddos_astopo::ipmap::PrefixAllocator;
use ddos_stats::distributions::log_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a corpus generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Length of the observation window in days (the paper's window is
    /// roughly 220 days: August 2012 – March 2013).
    pub days: u32,
    /// Botnet family catalog.
    pub catalog: FamilyCatalog,
    /// Synthetic Internet parameters.
    pub topology: TopologyConfig,
    /// Number of target services.
    pub n_targets: u32,
    /// The adversary scenario policy governing how family behavior evolves
    /// over the window. Defaults to [`ScenarioPolicy::Stationary`] (the
    /// paper's static marginals, bit-identical to the pre-scenario
    /// generator).
    #[serde(default)]
    pub scenario: ScenarioPolicy,
}

impl CorpusConfig {
    /// A fast configuration for unit tests (~1–2 k attacks, 2 families).
    pub fn small() -> Self {
        CorpusConfig {
            days: 60,
            catalog: FamilyCatalog::small(),
            topology: TopologyConfig::small(),
            n_targets: 40,
            scenario: ScenarioPolicy::Stationary,
        }
    }

    /// The same configuration under a different adversary policy.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioPolicy) -> Self {
        self.scenario = scenario;
        self
    }

    /// The paper-scale configuration: 220 days, the 10 Table I families,
    /// ~600 ASes, ~50 k attacks.
    pub fn standard() -> Self {
        CorpusConfig {
            days: 220,
            catalog: FamilyCatalog::icdcs2017(),
            topology: TopologyConfig::standard(),
            n_targets: 300,
            scenario: ScenarioPolicy::Stationary,
        }
    }

    /// A mid-size configuration for benches and examples: all 10 families
    /// at one quarter of the attack volume (the arrival *processes* keep
    /// their Table I shape; only the window shrinks).
    pub fn medium() -> Self {
        CorpusConfig {
            days: 110,
            catalog: FamilyCatalog::icdcs2017(),
            topology: TopologyConfig::standard(),
            n_targets: 150,
            scenario: ScenarioPolicy::Stationary,
        }
    }

    /// The Internet-scale configuration: ×100 the paper's attack volume
    /// over a ~100 k-AS topology. At roughly five million attacks this is
    /// far too large to materialize as an in-RAM [`Corpus`]; drive it
    /// through [`crate::stream::CorpusStream`] instead.
    pub fn internet() -> Self {
        CorpusConfig {
            days: 22_000,
            catalog: FamilyCatalog::internet(),
            topology: TopologyConfig::internet(),
            n_targets: 30_000,
            scenario: ScenarioPolicy::Stationary,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(TraceError::InvalidConfig { detail: "days must be nonzero".to_string() });
        }
        if self.n_targets == 0 {
            return Err(TraceError::InvalidConfig {
                detail: "need at least one target".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig::standard()
    }
}

/// Deterministic, seeded corpus generator.
///
/// # Example
///
/// ```
/// use ddos_trace::{CorpusConfig, TraceGenerator};
///
/// # fn main() -> Result<(), ddos_trace::TraceError> {
/// let corpus = TraceGenerator::new(CorpusConfig::small(), 7).generate()?;
/// let again = TraceGenerator::new(CorpusConfig::small(), 7).generate()?;
/// assert_eq!(corpus.attacks().len(), again.attacks().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: CorpusConfig,
    seed: u64,
}

/// Per-(family, target) duration memory: log-deviation AR(1) state.
pub(crate) type DurationState = HashMap<(FamilyId, TargetId), f64>;

/// Derives a per-family stream seed from the corpus seed via a splitmix64
/// finalizer, so partitioned generation gives every family its own
/// statistically independent RNG stream. Used by the family-partitioned
/// paths ([`TraceGenerator::generate_partitioned`] and
/// [`crate::stream::CorpusStream`]); the legacy single-stream
/// [`TraceGenerator::generate`] never calls this.
pub(crate) fn family_seed(seed: u64, slot: usize) -> u64 {
    let mut z = seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generation substrate: synthetic Internet, address plan, targets.
pub(crate) struct Substrate {
    pub(crate) topology: ddos_astopo::AsGraph,
    pub(crate) ipmap: ddos_astopo::ipmap::IpAsnMap,
    pub(crate) allocations:
        std::collections::BTreeMap<ddos_astopo::Asn, Vec<ddos_astopo::ipmap::Prefix>>,
    pub(crate) targets: TargetPopulation,
}

/// Builds the substrate exactly as [`TraceGenerator::generate`] does: the
/// topology from `seed ^ 0xA5`, the RNG-free address plan, and the target
/// spread as the first consumer of the caller's main RNG. Both generation
/// paths share this, which is what makes their substrates bit-identical.
pub(crate) fn build_substrate<R: Rng + ?Sized>(
    config: &CorpusConfig,
    seed: u64,
    rng: &mut R,
) -> Result<Substrate> {
    let topology = TopologyGenerator::new(config.topology.clone(), seed ^ 0xA5).generate()?;
    let (ipmap, allocations) = PrefixAllocator::new().allocate_for(&topology)?;
    let targets = TargetPopulation::spread(&topology, &allocations, config.n_targets, rng)?;
    Ok(Substrate { topology, ipmap, allocations, targets })
}

/// Moves a launch to the target's preferred hour (a deterministic offset
/// within ±6 h of the family's regime-shifted diurnal peak) plus Gaussian
/// jitter, keeping the day.
pub(crate) fn preferred_launch<R: Rng + ?Sized>(
    placed: Timestamp,
    target: TargetId,
    profile: &crate::family::FamilyProfile,
    params: &RegimeParams,
    rng: &mut R,
) -> Timestamp {
    let offset = (target.0 as i64 * 7) % 13 - 6; // -6..=6
    let pref = (profile.shifted_peak(params) as i64 + offset).rem_euclid(24) as f64;
    let jitter = profile.hour_jitter * ddos_stats::distributions::standard_normal(rng);
    let hour = (pref + jitter).rem_euclid(24.0);
    let secs = (hour * crate::time::HOUR as f64) as u64 % DAY;
    Timestamp(placed.day() as u64 * DAY + secs)
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(config: CorpusConfig, seed: u64) -> Self {
        TraceGenerator { config, seed }
    }

    /// The configuration this generator will run.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Generates the corpus.
    ///
    /// # Errors
    ///
    /// Propagates configuration, topology and sampling errors.
    pub fn generate(&self) -> Result<Corpus> {
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Substrate: Internet, address plan, targets.
        let Substrate { topology, ipmap, allocations, targets } =
            build_substrate(&self.config, self.seed, &mut rng)?;

        let mut attacks: Vec<AttackRecord> = Vec::new();
        let mut duration_state: DurationState = HashMap::new();

        for (family_id, profile) in self.config.catalog.iter() {
            let slot = family_id.0;
            let regimes = RegimeSchedule::generate(
                self.config.scenario,
                profile,
                self.config.days,
                self.seed,
                slot,
            );
            let pool = BotPool::recruit(&topology, &allocations, profile, slot, &mut rng)?;
            let schedule = ArrivalSchedule::generate_in_scenario(
                profile,
                self.config.days,
                slot,
                &regimes,
                &mut rng,
            )?;

            let mut regime_idx = 0usize;
            let (mut target_picker, mut vector_picker) =
                family_pickers(profile, slot, &targets, &regimes.regimes()[0].params)?;

            let mut prev: Option<(TargetId, Timestamp)> = None;
            for plan in schedule.days() {
                // Plans are chronological, so the regime cursor only moves
                // forward; pickers rebuild exactly once per boundary.
                let idx = regimes.index_at(plan.day);
                if idx != regime_idx {
                    regime_idx = idx;
                    let params = &regimes.regimes()[idx].params;
                    (target_picker, vector_picker) =
                        family_pickers(profile, slot, &targets, params)?;
                }
                let params = regimes.regimes()[regime_idx].params;
                let launches =
                    place_within_day_in_regime(plan.day, plan.count, profile, &params, &mut rng)?;
                // Activity multiplier couples magnitudes to the day's latent
                // rate, giving the temporal model real structure.
                let activity = (plan.rate / profile.avg_attacks_per_day).powf(0.8);
                for ts in launches {
                    let (target_id, mut start, multistage) = pick_target(
                        self.config.days,
                        profile.multistage_prob,
                        &prev,
                        ts,
                        &target_picker,
                        &mut rng,
                    )?;
                    if !multistage && rng.gen_bool(profile.hour_affinity) {
                        start = preferred_launch(start, target_id, profile, &params, &mut rng);
                    }
                    let target = targets.target(target_id)?;
                    let vector = crate::attack::AttackVector::ALL[vector_picker.sample(&mut rng)];
                    let record = build_attack(
                        family_id,
                        profile,
                        &params,
                        &pool,
                        target_id,
                        target.asn,
                        start,
                        activity,
                        multistage,
                        vector,
                        &mut duration_state,
                        &mut rng,
                    )?;
                    prev = Some((target_id, start));
                    attacks.push(record);
                }
            }
        }

        // Chronological ordering and dense DDoS IDs.
        attacks.sort_by_key(|a| (a.start, a.family, a.target));
        for (i, a) in attacks.iter_mut().enumerate() {
            a.id = AttackId(i as u64);
        }
        Corpus::new(
            attacks,
            self.config.catalog.clone(),
            topology,
            ipmap,
            targets,
            self.config.days,
        )
    }

    /// Generates the corpus with per-family RNG streams — the in-RAM
    /// reference for [`crate::stream::CorpusStream`].
    ///
    /// Each family draws from its own [`family_seed`]-derived stream, so
    /// families are independent and the result is invariant to execution
    /// order; records are globally sorted and densely re-identified exactly
    /// as [`TraceGenerator::generate`] does. The statistical model is
    /// identical to `generate`, but the draw *sequence* differs, so the two
    /// paths produce different (equally valid) corpora for the same seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration, topology and sampling errors.
    pub fn generate_partitioned(&self) -> Result<Corpus> {
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let Substrate { topology, ipmap, allocations, targets } =
            build_substrate(&self.config, self.seed, &mut rng)?;
        let targets = std::sync::Arc::new(targets);

        let mut attacks: Vec<AttackRecord> = Vec::new();
        for (family_id, profile) in self.config.catalog.iter() {
            let mut fam = crate::stream::FamilyGen::new(
                family_id,
                profile.clone(),
                &self.config,
                self.seed,
                &topology,
                &allocations,
                std::sync::Arc::clone(&targets),
            )?;
            fam.advance(self.config.days, &mut attacks)?;
        }

        attacks.sort_by_key(|a| (a.start, a.family, a.target));
        for (i, a) in attacks.iter_mut().enumerate() {
            a.id = AttackId(i as u64);
        }
        let targets = std::sync::Arc::try_unwrap(targets).unwrap_or_else(|arc| (*arc).clone());
        Corpus::new(
            attacks,
            self.config.catalog.clone(),
            topology,
            ipmap,
            targets,
            self.config.days,
        )
    }
}

/// Builds the family's target-preference and vector pickers for one
/// regime: a Zipf over the slot- and regime-rotated target order, and the
/// regime's vector blend. Rebuilt lazily at regime boundaries; under a
/// stationary regime (zero rotation, profile vector weights) the pickers
/// are identical to the pre-scenario static ones. Consumes no randomness.
pub(crate) fn family_pickers(
    profile: &crate::family::FamilyProfile,
    slot: usize,
    targets: &TargetPopulation,
    params: &RegimeParams,
) -> Result<(ddos_stats::distributions::Categorical, ddos_stats::distributions::Categorical)> {
    let target_weights: Vec<f64> = (0..targets.len())
        .map(|i| {
            let rank = targets.preference_rank(i, slot, params);
            1.0 / ((rank + 1) as f64).powf(profile.target_zipf)
        })
        .collect();
    let target_picker =
        ddos_stats::distributions::Categorical::new(&target_weights).map_err(TraceError::Stats)?;
    let vector_picker = ddos_stats::distributions::Categorical::new(&params.vector_weights)
        .map_err(TraceError::Stats)?;
    Ok((target_picker, vector_picker))
}

/// Chooses the victim and (possibly adjusted) launch time. A multistage
/// follow-up re-attacks the previous target 30 s–24 h after the previous
/// launch (§III-A2).
///
/// # Errors
///
/// Propagates sampler parameter errors (none occur for the constant
/// log-normal gap parameters, so the draw stream is unchanged from the
/// previous infallible fallback).
pub(crate) fn pick_target<R: Rng + ?Sized>(
    days: u32,
    multistage_prob: f64,
    prev: &Option<(TargetId, Timestamp)>,
    placed: Timestamp,
    picker: &ddos_stats::distributions::Categorical,
    rng: &mut R,
) -> Result<(TargetId, Timestamp, bool)> {
    if let Some((prev_target, prev_start)) = prev {
        if rng.gen_bool(multistage_prob) {
            // Gap log-normal, median ~45 min, clamped to the band.
            let gap = log_normal(rng, (45.0 * 60.0f64).ln(), 0.5)
                .map_err(TraceError::Stats)?
                .clamp(30.0, (DAY - 1) as f64) as u64;
            let start = *prev_start + gap;
            if start.day() < days {
                return Ok((*prev_target, start, true));
            }
        }
    }
    Ok((TargetId(picker.sample(rng) as u32), placed, false))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn build_attack<R: Rng + ?Sized>(
    family: FamilyId,
    profile: &crate::family::FamilyProfile,
    params: &RegimeParams,
    pool: &BotPool,
    target: TargetId,
    target_asn: ddos_astopo::Asn,
    start: Timestamp,
    activity: f64,
    multistage: bool,
    vector: crate::attack::AttackVector,
    duration_state: &mut DurationState,
    rng: &mut R,
) -> Result<AttackRecord> {
    // Magnitude: log-normal with mean `mean_magnitude`, scaled by the
    // day's activity level (which already folds in regime intensity
    // through the latent rate).
    let sigma = profile.magnitude_sigma;
    let mu = profile.mean_magnitude.ln() - sigma * sigma / 2.0;
    let raw = log_normal(rng, mu, sigma).map_err(TraceError::Stats)? * activity;
    let magnitude = (raw.round() as usize).clamp(3, pool.len());
    let bots = pool.participants_in_regime(params, start.day(), magnitude, rng);
    let magnitude = bots.len();

    // Duration: per-(family, target) AR(1) in log space around the
    // family median, mildly scaled by magnitude. The AR(1) shape comes
    // from the governing regime, not the static profile.
    let key = (family, target);
    let prev_dev = duration_state.get(&key).copied().unwrap_or(0.0);
    let rho = params.duration_persistence;
    let innov = params.duration_sigma * (1.0 - rho * rho).sqrt();
    let dev = rho * prev_dev + innov * ddos_stats::distributions::standard_normal(rng);
    duration_state.insert(key, dev);
    let mag_factor = (magnitude as f64 / profile.mean_magnitude).powf(0.3);
    let duration = (profile.median_duration_secs * dev.exp() * mag_factor)
        .clamp(30.0, (3 * DAY) as f64) as u64;

    // Hourly cumulative snapshots: linear bot ramp-up over the attack.
    let hours = duration.div_ceil(HOUR).max(1) as usize;
    let hourly_bot_counts: Vec<u32> =
        (1..=hours).map(|h| ((magnitude * h) as f64 / hours as f64).ceil() as u32).collect();

    // id 0 here; the real id is assigned after the global sort.
    Ok(AttackRecord::new(
        AttackId(0),
        family,
        target,
        target_asn,
        start,
        duration,
        bots,
        hourly_bot_counts,
        multistage,
        vector,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus(seed: u64) -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), seed).generate().unwrap()
    }

    #[test]
    fn degenerate_configs_fail_with_typed_errors_not_panics() {
        let zero_days = CorpusConfig { days: 0, ..CorpusConfig::small() };
        let err = TraceGenerator::new(zero_days, 1).generate().unwrap_err();
        assert!(matches!(err, TraceError::InvalidConfig { ref detail } if detail.contains("days")));

        let no_targets = CorpusConfig { n_targets: 0, ..CorpusConfig::small() };
        let err = TraceGenerator::new(no_targets, 1).generate().unwrap_err();
        assert!(
            matches!(err, TraceError::InvalidConfig { ref detail } if detail.contains("target"))
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus(5);
        let b = small_corpus(5);
        assert_eq!(a.attacks().len(), b.attacks().len());
        assert_eq!(a.attacks()[10], b.attacks()[10]);
        let c = small_corpus(6);
        assert_ne!(a.attacks().len(), c.attacks().len());
    }

    #[test]
    fn attacks_are_chronological_with_dense_ids() {
        let c = small_corpus(7);
        for (i, w) in c.attacks().windows(2).enumerate() {
            assert!(w[0].start <= w[1].start, "out of order at {i}");
        }
        for (i, a) in c.attacks().iter().enumerate() {
            assert_eq!(a.id, AttackId(i as u64));
        }
    }

    #[test]
    fn every_attack_is_internally_consistent() {
        let c = small_corpus(8);
        for a in c.attacks() {
            assert!(a.is_consistent(), "{} inconsistent", a.id);
            assert!(a.magnitude() >= 3);
            assert!(a.duration_secs >= 30);
            assert!(a.start.day() < 60 + 3); // multistage may spill ≤ 1 day
        }
    }

    #[test]
    fn corpus_size_matches_expectation() {
        let c = small_corpus(9);
        let expected: f64 =
            CorpusConfig::small().catalog.iter().map(|(_, f)| f.expected_attacks()).sum();
        let n = c.attacks().len() as f64;
        assert!(
            n > expected * 0.5 && n < expected * 1.6,
            "generated {n}, expected about {expected}"
        );
    }

    #[test]
    fn multistage_attacks_hit_previous_target_within_band() {
        let c = small_corpus(10);
        let mut by_family: std::collections::HashMap<FamilyId, Vec<&AttackRecord>> =
            std::collections::HashMap::new();
        for a in c.attacks() {
            by_family.entry(a.family).or_default().push(a);
        }
        let mut checked = 0;
        for attacks in by_family.values() {
            // Attacks are chronological; find multistage ones and verify a
            // prior attack by the family on the same target within the band.
            for (i, a) in attacks.iter().enumerate() {
                if !a.multistage {
                    continue;
                }
                let ok = attacks[..i].iter().rev().any(|p| {
                    p.target == a.target && {
                        let gap = a.start.abs_diff(p.start);
                        (30..DAY).contains(&gap)
                    }
                });
                assert!(ok, "{} flagged multistage without a band-mate", a.id);
                checked += 1;
            }
        }
        assert!(checked > 10, "too few multistage attacks to trust the test ({checked})");
    }

    #[test]
    fn multistage_fraction_is_plausible() {
        let c = small_corpus(11);
        let ms = c.attacks().iter().filter(|a| a.multistage).count() as f64;
        let frac = ms / c.attacks().len() as f64;
        // Catalog probabilities are 0.40–0.45 for the two small families.
        assert!(frac > 0.2 && frac < 0.6, "multistage fraction {frac}");
    }

    #[test]
    fn bots_resolve_through_ip_map() {
        let c = small_corpus(12);
        for a in c.attacks().iter().take(50) {
            for b in a.bots() {
                assert_eq!(c.ip_map().lookup(b.ip), Some(b.asn), "IP map mismatch");
            }
        }
    }

    #[test]
    fn family_target_preferences_differ() {
        let c = small_corpus(13);
        let top_target = |fam: FamilyId| {
            let mut h: std::collections::HashMap<TargetId, usize> =
                std::collections::HashMap::new();
            for a in c.attacks().iter().filter(|a| a.family == fam) {
                *h.entry(a.target).or_insert(0) += 1;
            }
            h.into_iter().max_by_key(|(_, n)| *n).map(|(t, _)| t)
        };
        assert_ne!(top_target(FamilyId(0)), top_target(FamilyId(1)));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CorpusConfig::small();
        cfg.days = 0;
        assert!(TraceGenerator::new(cfg, 1).generate().is_err());
        let mut cfg = CorpusConfig::small();
        cfg.n_targets = 0;
        assert!(TraceGenerator::new(cfg, 1).generate().is_err());
    }
}
