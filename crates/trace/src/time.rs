//! Trace-local timestamps.
//!
//! The paper decomposes attack timestamps into `(day, hour)` pairs (§III-B2)
//! because botmasters schedule by bot-activity cycles and defenses deploy on
//! daily/hourly cadence. [`Timestamp`] is seconds since trace start with
//! that decomposition built in.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in a minute.
pub const MINUTE: u64 = 60;
/// Seconds in an hour.
pub const HOUR: u64 = 3_600;
/// Seconds in a day.
pub const DAY: u64 = 86_400;

/// A trace-local timestamp: seconds since the beginning of the observation
/// window.
///
/// # Example
///
/// ```
/// use ddos_trace::Timestamp;
///
/// let t = Timestamp::from_day_hour(3, 14) + 1800;
/// assert_eq!(t.day(), 3);
/// assert_eq!(t.hour(), 14);
/// assert_eq!(t.second_of_hour(), 1800);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The trace origin (second 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp at the start of the given hour of the given day.
    pub fn from_day_hour(day: u32, hour: u8) -> Self {
        Timestamp(day as u64 * DAY + hour as u64 % 24 * HOUR)
    }

    /// Raw seconds since trace start.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Day index since trace start (0-based).
    pub fn day(self) -> u32 {
        (self.0 / DAY) as u32
    }

    /// Hour of day, `0..24`.
    pub fn hour(self) -> u8 {
        ((self.0 % DAY) / HOUR) as u8
    }

    /// Second within the current hour, `0..3600`.
    pub fn second_of_hour(self) -> u64 {
        self.0 % HOUR
    }

    /// Day-of-month style value `1..=31`, cycling: the paper confines the
    /// day part of its timestamp variable to a closed interval like
    /// `[1, 31]` to expose monthly periodicity.
    pub fn day_of_month(self) -> u8 {
        (self.day() % 31 + 1) as u8
    }

    /// Absolute hour index since trace start.
    pub fn absolute_hour(self) -> u64 {
        self.0 / HOUR
    }

    /// Saturating distance in seconds to another timestamp.
    pub fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;

    fn add(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;

    /// Seconds elapsed from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics when `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("timestamp subtraction went negative; use abs_diff for unordered pairs")
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}h{:02}m{:02}s{:02}",
            self.day(),
            self.hour(),
            (self.0 % HOUR) / MINUTE,
            self.0 % MINUTE
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_round_trips() {
        let t = Timestamp::from_day_hour(5, 23);
        assert_eq!(t.day(), 5);
        assert_eq!(t.hour(), 23);
        assert_eq!(t.second_of_hour(), 0);
        assert_eq!(t.absolute_hour(), 5 * 24 + 23);
    }

    #[test]
    fn hour_wraps() {
        let t = Timestamp::from_day_hour(0, 25); // 25 % 24 = 1
        assert_eq!(t.hour(), 1);
    }

    #[test]
    fn day_of_month_cycles_one_based() {
        assert_eq!(Timestamp::from_day_hour(0, 0).day_of_month(), 1);
        assert_eq!(Timestamp::from_day_hour(30, 0).day_of_month(), 31);
        assert_eq!(Timestamp::from_day_hour(31, 0).day_of_month(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Timestamp(100);
        let b = a + 50;
        assert_eq!(b.as_secs(), 150);
        assert_eq!(b - a, 50);
        assert_eq!(a.abs_diff(b), 50);
        assert_eq!(b.abs_diff(a), 50);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_subtraction_panics() {
        let _ = Timestamp(1) - Timestamp(2);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_day_hour(2, 3) + 65;
        assert_eq!(t.to_string(), "d2h03m01s05");
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(Timestamp(5) < Timestamp(6));
        assert_eq!(Timestamp::ZERO, Timestamp::default());
    }
}
