//! Plain-text CSV export of corpus data.
//!
//! Downstream analysis (plotting the figures, notebook exploration) wants
//! flat files. The writers here are dependency-free (hand-rolled CSV —
//! every exported field is numeric or a bare identifier, so no quoting is
//! required) and the attack export round-trips through
//! [`parse_attacks_csv`] for lossless interchange of the record skeleton
//! (per-bot lists are exported separately).

use crate::attack::{AttackId, AttackRecord};
use crate::dataset::Corpus;
use crate::family::FamilyId;
use crate::targets::TargetId;
use crate::time::Timestamp;
use crate::{Result, TraceError};
use ddos_astopo::Asn;
use std::fmt::Write as _;

/// Header of the attack CSV schema.
pub const ATTACKS_CSV_HEADER: &str =
    "id,family,target,target_asn,start_secs,duration_secs,magnitude,multistage,vector";

/// Serializes the corpus's attack records (without per-bot detail).
pub fn attacks_to_csv(corpus: &Corpus) -> String {
    let mut out = String::with_capacity(corpus.len() * 48);
    out.push_str(ATTACKS_CSV_HEADER);
    out.push('\n');
    for a in corpus.attacks() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            a.id.0,
            a.family.0,
            a.target.0,
            a.target_asn.0,
            a.start.as_secs(),
            a.duration_secs,
            a.magnitude(),
            u8::from(a.multistage),
            a.vector.index(),
        );
    }
    out
}

/// A parsed attack-skeleton row (the CSV does not carry per-bot lists;
/// `magnitude` preserves the bot count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRow {
    /// Attack id.
    pub id: AttackId,
    /// Launching family.
    pub family: FamilyId,
    /// Victim.
    pub target: TargetId,
    /// Victim AS.
    pub target_asn: Asn,
    /// Launch time.
    pub start: Timestamp,
    /// Duration, seconds.
    pub duration_secs: u64,
    /// Distinct-bot count.
    pub magnitude: u32,
    /// Multistage flag.
    pub multistage: bool,
    /// Traffic mechanism.
    pub vector: crate::attack::AttackVector,
}

/// Column names of the attack CSV schema, in field order.
const ATTACKS_CSV_COLUMNS: [&str; 9] = [
    "id",
    "family",
    "target",
    "target_asn",
    "start_secs",
    "duration_secs",
    "magnitude",
    "multistage",
    "vector",
];

/// Parses [`attacks_to_csv`] output.
///
/// Every numeric field is validated for range, not just syntax: a value
/// that parses as `u64` but does not fit the destination type (`u32`
/// target/ASN/magnitude, the 0/1 multistage flag, the vector index) is a
/// typed [`TraceError::CsvField`] carrying the row and column — never a
/// silent wrap-around. Fractional or negative inputs already fail the
/// integer parse and report the same way.
///
/// # Errors
///
/// Returns [`TraceError::InvalidConfig`] for a malformed header or row
/// shape, [`TraceError::CsvField`] for a field-level violation.
pub fn parse_attacks_csv(csv: &str) -> Result<Vec<AttackRow>> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == ATTACKS_CSV_HEADER => {}
        other => {
            return Err(TraceError::InvalidConfig { detail: format!("bad CSV header: {other:?}") })
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 9 {
            return Err(TraceError::InvalidConfig {
                detail: format!("row {lineno}: expected 9 fields, got {}", fields.len()),
            });
        }
        let num = |i: usize| -> Result<u64> {
            fields[i].parse().map_err(|_| TraceError::CsvField {
                row: lineno,
                column: ATTACKS_CSV_COLUMNS[i],
                detail: format!("{:?} is not a non-negative integer", fields[i]),
            })
        };
        let num_u32 = |i: usize| -> Result<u32> {
            let v = num(i)?;
            u32::try_from(v).map_err(|_| TraceError::CsvField {
                row: lineno,
                column: ATTACKS_CSV_COLUMNS[i],
                detail: format!("{v} exceeds u32::MAX"),
            })
        };
        let multistage = match num(7)? {
            0 => false,
            1 => true,
            v => {
                return Err(TraceError::CsvField {
                    row: lineno,
                    column: ATTACKS_CSV_COLUMNS[7],
                    detail: format!("flag must be 0 or 1, got {v}"),
                })
            }
        };
        let vector_idx = num(8)?;
        let vector = usize::try_from(vector_idx)
            .ok()
            .and_then(|i| crate::attack::AttackVector::ALL.get(i))
            .copied()
            .ok_or_else(|| TraceError::CsvField {
                row: lineno,
                column: ATTACKS_CSV_COLUMNS[8],
                detail: format!(
                    "vector index {vector_idx} out of range 0..{}",
                    crate::attack::AttackVector::ALL.len()
                ),
            })?;
        out.push(AttackRow {
            id: AttackId(num(0)?),
            family: FamilyId(usize::try_from(num(1)?).map_err(|_| TraceError::CsvField {
                row: lineno,
                column: ATTACKS_CSV_COLUMNS[1],
                detail: "family id overflows usize".to_string(),
            })?),
            target: TargetId(num_u32(2)?),
            target_asn: Asn(num_u32(3)?),
            start: Timestamp(num(4)?),
            duration_secs: num(5)?,
            magnitude: num_u32(6)?,
            multistage,
            vector,
        });
    }
    Ok(out)
}

/// Serializes one attack's per-bot observations (`attack_id,ip,asn`).
pub fn bots_to_csv(attack: &AttackRecord) -> String {
    let mut out = String::from("attack_id,ip,asn\n");
    for b in attack.bots() {
        let _ = writeln!(out, "{},{},{}", attack.id.0, b.ip, b.asn.0);
    }
    out
}

/// Serializes a truth-vs-prediction series (`index,truth,predicted`) —
/// the flat file behind a Fig. 1/2-style plot.
pub fn series_to_csv(truth: &[f64], predicted: &[f64]) -> Result<String> {
    if truth.len() != predicted.len() {
        return Err(TraceError::InvalidConfig {
            detail: format!("series lengths differ: {} vs {}", truth.len(), predicted.len()),
        });
    }
    let mut out = String::from("index,truth,predicted\n");
    for (i, (t, p)) in truth.iter().zip(predicted).enumerate() {
        let _ = writeln!(out, "{i},{t},{p}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), 181).generate().unwrap()
    }

    #[test]
    fn attacks_round_trip() {
        let c = corpus();
        let csv = attacks_to_csv(&c);
        let rows = parse_attacks_csv(&csv).unwrap();
        assert_eq!(rows.len(), c.len());
        for (row, attack) in rows.iter().zip(c.attacks()) {
            assert_eq!(row.id, attack.id);
            assert_eq!(row.family, attack.family);
            assert_eq!(row.target, attack.target);
            assert_eq!(row.target_asn, attack.target_asn);
            assert_eq!(row.start, attack.start);
            assert_eq!(row.duration_secs, attack.duration_secs);
            assert_eq!(row.magnitude as usize, attack.magnitude());
            assert_eq!(row.multistage, attack.multistage);
            assert_eq!(row.vector, attack.vector);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_attacks_csv("nope\n1,2,3").is_err());
        let bad_width = format!("{ATTACKS_CSV_HEADER}\n1,2,3\n");
        assert!(parse_attacks_csv(&bad_width).is_err());
        let bad_number = format!("{ATTACKS_CSV_HEADER}\n1,2,3,4,x,6,7,8,0\n");
        assert!(parse_attacks_csv(&bad_number).is_err());
        let bad_vector = format!("{ATTACKS_CSV_HEADER}\n1,2,3,4,5,6,7,0,9\n");
        assert!(parse_attacks_csv(&bad_vector).is_err());
        // Empty body parses to zero rows.
        assert!(parse_attacks_csv(&format!("{ATTACKS_CSV_HEADER}\n")).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_fields_are_typed_errors_not_wraparound() {
        // 2^32 + 7 used to wrap to 7 through `as u32`; it must now be a
        // CsvField error naming the row and column.
        let overflow = 4_294_967_303u64;
        let csv = format!("{ATTACKS_CSV_HEADER}\n0,1,{overflow},4,5,6,7,0,0\n");
        match parse_attacks_csv(&csv) {
            Err(TraceError::CsvField { row: 0, column: "target", .. }) => {}
            other => panic!("expected CsvField target error, got {other:?}"),
        }
        let csv = format!("{ATTACKS_CSV_HEADER}\n0,1,2,{overflow},5,6,7,0,0\n");
        match parse_attacks_csv(&csv) {
            Err(TraceError::CsvField { row: 0, column: "target_asn", .. }) => {}
            other => panic!("expected CsvField target_asn error, got {other:?}"),
        }
        let csv = format!("{ATTACKS_CSV_HEADER}\n0,1,2,3,5,6,{overflow},0,0\n");
        match parse_attacks_csv(&csv) {
            Err(TraceError::CsvField { row: 0, column: "magnitude", .. }) => {}
            other => panic!("expected CsvField magnitude error, got {other:?}"),
        }
        // Fractional values fail integer parsing with the same context.
        let csv = format!("{ATTACKS_CSV_HEADER}\n0,1,2,3,5,6,7.5,0,0\n");
        match parse_attacks_csv(&csv) {
            Err(TraceError::CsvField { row: 0, column: "magnitude", .. }) => {}
            other => panic!("expected CsvField magnitude error, got {other:?}"),
        }
        // A multistage flag outside {0, 1} is rejected, not truthy-coerced.
        let csv = format!("{ATTACKS_CSV_HEADER}\n0,1,2,3,5,6,7,2,0\n");
        match parse_attacks_csv(&csv) {
            Err(TraceError::CsvField { row: 0, column: "multistage", .. }) => {}
            other => panic!("expected CsvField multistage error, got {other:?}"),
        }
    }

    #[test]
    fn bots_csv_lists_every_bot() {
        let c = corpus();
        let attack = &c.attacks()[0];
        let csv = bots_to_csv(attack);
        assert_eq!(csv.lines().count(), attack.magnitude() + 1);
        assert!(csv.starts_with("attack_id,ip,asn\n"));
    }

    #[test]
    fn series_csv_shape() {
        let csv = series_to_csv(&[1.0, 2.0], &[1.5, 2.5]).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,2,2.5"));
        assert!(series_to_csv(&[1.0], &[1.0, 2.0]).is_err());
    }
}
