//! Per-family bot pools with AS affinity and temporal churn.
//!
//! A family's pool is recruited once per trace: bots are placed into stub
//! ASes drawn from a region-weighted Zipf (families concentrate in few
//! networks — the geolocation affinity of §II-B). At attack time the
//! participants are sampled from a *rotating window* over the pool, so the
//! set of source ASes drifts slowly across the trace: "the bots involved in
//! an attack may rotate or shift" (§III-B1). That drift is precisely the
//! signal the temporal `A^s` series and the spatial model consume.

use crate::attack::BotObservation;
use crate::family::FamilyProfile;
use crate::{Result, TraceError};
use ddos_astopo::graph::{AsGraph, Tier};
use ddos_astopo::ipmap::Prefix;
use ddos_astopo::Asn;
use ddos_stats::distributions::Categorical;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A botnet family's recruited bot population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BotPool {
    bots: Vec<BotObservation>,
    /// Fraction of the pool the rotation window advances per day.
    churn_per_day: f64,
    /// Fraction of the pool inside the active window.
    window_fraction: f64,
}

impl BotPool {
    /// Recruits a pool for `profile` over the stub ASes of `graph`.
    ///
    /// AS selection layers the family's regional affinity over a Zipf
    /// concentration (rank order deterministic in the ASN sort, offset by
    /// `family_slot` so families prefer different networks).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] when the graph has no stub
    /// ASes or allocations are missing.
    pub fn recruit<R: Rng + ?Sized>(
        graph: &AsGraph,
        allocations: &BTreeMap<Asn, Vec<Prefix>>,
        profile: &FamilyProfile,
        family_slot: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let stubs = graph.tier_members(Tier::Stub);
        if stubs.is_empty() {
            return Err(TraceError::InvalidConfig {
                detail: "topology has no stub ASes to host bots".to_string(),
            });
        }
        // Regional weight per stub.
        let mut weights = Vec::with_capacity(stubs.len());
        for s in &stubs {
            let info = graph.info(*s).ok_or_else(|| TraceError::InvalidConfig {
                detail: format!("{s} listed as a stub but missing from the topology"),
            })?;
            let region = info.region as usize;
            weights.push(profile.region_weights[region % profile.region_weights.len()].max(1e-6));
        }

        // Zipf rank over a rotated stub order: family_slot shifts which
        // ASes take the head ranks.
        let zipf_weight = |rank: usize| 1.0 / ((rank + 1) as f64).powf(profile.as_concentration);
        let composed: Vec<f64> = (0..stubs.len())
            .map(|i| {
                let rank = (i + stubs.len() - family_slot * 7 % stubs.len()) % stubs.len();
                weights[i] * zipf_weight(rank)
            })
            .collect();
        let picker = Categorical::new(&composed).map_err(TraceError::Stats)?;

        let mut bots = Vec::with_capacity(profile.pool_size);
        let mut used: BTreeSet<u32> = BTreeSet::new();
        while bots.len() < profile.pool_size {
            let asn = stubs[picker.sample(rng)];
            let prefixes = allocations.get(&asn).ok_or_else(|| TraceError::InvalidConfig {
                detail: format!("{asn} has no prefix allocation"),
            })?;
            let prefix = prefixes[rng.gen_range(0..prefixes.len())];
            let ip = prefix.address(rng.gen_range(1..prefix.size()));
            if used.insert(ip) {
                bots.push(BotObservation { ip, asn });
            }
        }
        Ok(BotPool { bots, churn_per_day: 0.013, window_fraction: 0.5 })
    }

    /// Number of bots in the pool.
    pub fn len(&self) -> usize {
        self.bots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.bots.is_empty()
    }

    /// All bots (stable order).
    pub fn bots(&self) -> &[BotObservation] {
        &self.bots
    }

    /// Distinct ASes hosting pool bots, ascending.
    pub fn asns(&self) -> Vec<Asn> {
        let set: BTreeSet<Asn> = self.bots.iter().map(|b| b.asn).collect();
        set.into_iter().collect()
    }

    /// Window length and circular start index of the active window on
    /// `day`, with the window fraction scaled by the governing regime's
    /// pool engagement. `None` for an empty pool. An engagement of 1.0
    /// reproduces the calibrated window bit-exactly (`x * 1.0` is exact).
    fn window_bounds(&self, day: u32, engagement: f64) -> Option<(usize, usize)> {
        let n = self.bots.len();
        if n == 0 {
            return None;
        }
        let fraction = self.window_fraction * engagement;
        let window = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
        let start = ((day as f64 * self.churn_per_day * n as f64) as usize) % n;
        Some((window, start))
    }

    /// The set of bots considered *active* on `day`: a circular window over
    /// the pool that advances by `churn_per_day · len` indices per day.
    pub fn active_window(&self, day: u32) -> Vec<BotObservation> {
        let Some((window, start)) = self.window_bounds(day, 1.0) else { return Vec::new() };
        let n = self.bots.len();
        (0..window).map(|i| self.bots[(start + i) % n]).collect()
    }

    /// Samples `count` distinct participants for an attack launched on
    /// `day`. When `count` exceeds the day's active window, the whole
    /// window participates.
    ///
    /// The sample reproduces a partial Fisher–Yates shuffle of the window
    /// draw-for-draw, but through a sparse swap overlay instead of
    /// materializing the O(pool) window per call — the generator invokes
    /// this once per attack, so at internet scale the dense copy dominated
    /// the whole pipeline. Outputs are bit-identical to the dense shuffle
    /// (pinned by `overlay_sampling_matches_dense_shuffle`).
    pub fn participants<R: Rng + ?Sized>(
        &self,
        day: u32,
        count: usize,
        rng: &mut R,
    ) -> Vec<BotObservation> {
        self.participants_engaged(1.0, day, count, rng)
    }

    /// [`BotPool::participants`] under a regime view: the active window is
    /// widened (or narrowed) by the regime's
    /// [`crate::scenario::RegimeParams::pool_engagement`] before sampling —
    /// bursts mobilize more of the pool, lulls less. Engagement 1.0 is
    /// draw-for-draw identical to the calibrated sampler.
    pub fn participants_in_regime<R: Rng + ?Sized>(
        &self,
        params: &crate::scenario::RegimeParams,
        day: u32,
        count: usize,
        rng: &mut R,
    ) -> Vec<BotObservation> {
        self.participants_engaged(params.pool_engagement, day, count, rng)
    }

    fn participants_engaged<R: Rng + ?Sized>(
        &self,
        engagement: f64,
        day: u32,
        count: usize,
        rng: &mut R,
    ) -> Vec<BotObservation> {
        let Some((window, start)) = self.window_bounds(day, engagement) else { return Vec::new() };
        let n = self.bots.len();
        let at = |i: usize| self.bots[(start + i) % n];
        if count >= window {
            return (0..window).map(at).collect();
        }
        // Sparse partial Fisher–Yates: overlay[k] holds the value a dense
        // shuffle would have swapped into window slot k. Slot i is fixed
        // after iteration i (later draws only touch j ≥ i' > i), so its
        // final value goes straight into the output.
        let mut overlay: std::collections::HashMap<usize, BotObservation> =
            std::collections::HashMap::with_capacity(count.saturating_mul(2));
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let j = rng.gen_range(i..window);
            let vj = overlay.get(&j).copied().unwrap_or_else(|| at(j));
            let vi = overlay.get(&i).copied().unwrap_or_else(|| at(i));
            overlay.insert(j, vi);
            out.push(vj);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyCatalog;
    use ddos_astopo::gen::{TopologyConfig, TopologyGenerator};
    use ddos_astopo::ipmap::PrefixAllocator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (AsGraph, BTreeMap<Asn, Vec<Prefix>>) {
        let g = TopologyGenerator::new(TopologyConfig::small(), 61).generate().unwrap();
        let (_, allocs) = PrefixAllocator::new().allocate_for(&g).unwrap();
        (g, allocs)
    }

    fn pool(seed: u64) -> BotPool {
        let (g, allocs) = setup();
        let cat = FamilyCatalog::small();
        let profile = cat.profile(crate::family::FamilyId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        BotPool::recruit(&g, &allocs, profile, 0, &mut rng).unwrap()
    }

    #[test]
    fn pool_has_requested_size_and_unique_ips() {
        let p = pool(1);
        let cat = FamilyCatalog::small();
        assert_eq!(p.len(), cat.profile(crate::family::FamilyId(0)).unwrap().pool_size);
        let ips: BTreeSet<u32> = p.bots().iter().map(|b| b.ip).collect();
        assert_eq!(ips.len(), p.len(), "duplicate IPs recruited");
        assert!(!p.is_empty());
    }

    #[test]
    fn bots_live_in_stub_ases() {
        let (g, allocs) = setup();
        let cat = FamilyCatalog::small();
        let profile = cat.profile(crate::family::FamilyId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let p = BotPool::recruit(&g, &allocs, profile, 1, &mut rng).unwrap();
        for b in p.bots() {
            assert_eq!(g.info(b.asn).unwrap().tier, Tier::Stub);
            assert!(allocs[&b.asn].iter().any(|pf| pf.contains(b.ip)));
        }
    }

    #[test]
    fn recruiting_over_a_stubless_topology_is_a_typed_error() {
        let cat = FamilyCatalog::small();
        let profile = cat.profile(crate::family::FamilyId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let err =
            BotPool::recruit(&AsGraph::new(), &BTreeMap::new(), profile, 0, &mut rng).unwrap_err();
        assert!(
            matches!(err, crate::TraceError::InvalidConfig { ref detail } if detail.contains("stub"))
        );
    }

    #[test]
    fn pool_is_as_concentrated() {
        let p = pool(3);
        // With a Zipf concentration the top AS should hold far more than a
        // uniform share.
        let hist: BTreeMap<Asn, usize> = p.bots().iter().fold(BTreeMap::new(), |mut m, b| {
            *m.entry(b.asn).or_insert(0) += 1;
            m
        });
        let max = *hist.values().max().unwrap();
        let uniform_share = p.len() / hist.len().max(1);
        assert!(max > uniform_share * 2, "max {max}, uniform {uniform_share}");
    }

    #[test]
    fn active_window_rotates_over_time() {
        let p = pool(4);
        let w0: BTreeSet<u32> = p.active_window(0).iter().map(|b| b.ip).collect();
        let w_far: BTreeSet<u32> = p.active_window(40).iter().map(|b| b.ip).collect();
        assert_eq!(w0.len(), w_far.len());
        let overlap = w0.intersection(&w_far).count();
        assert!(overlap < w0.len(), "window did not rotate");
        // Adjacent days overlap heavily (slow churn).
        let w1: BTreeSet<u32> = p.active_window(1).iter().map(|b| b.ip).collect();
        let near_overlap = w0.intersection(&w1).count();
        assert!(near_overlap as f64 > w0.len() as f64 * 0.9);
    }

    #[test]
    fn participants_are_distinct_and_from_window() {
        let p = pool(5);
        let mut rng = StdRng::seed_from_u64(6);
        let picks = p.participants(10, 50, &mut rng);
        assert_eq!(picks.len(), 50);
        let ips: BTreeSet<u32> = picks.iter().map(|b| b.ip).collect();
        assert_eq!(ips.len(), 50, "participants repeat");
        let window: BTreeSet<u32> = p.active_window(10).iter().map(|b| b.ip).collect();
        assert!(ips.iter().all(|ip| window.contains(ip)));
    }

    #[test]
    fn oversized_request_returns_whole_window() {
        let p = pool(7);
        let mut rng = StdRng::seed_from_u64(8);
        let picks = p.participants(0, p.len() * 2, &mut rng);
        assert_eq!(picks.len(), p.active_window(0).len());
    }

    #[test]
    fn overlay_sampling_matches_dense_shuffle() {
        // The sparse-overlay sampler must reproduce the dense partial
        // Fisher–Yates bit-for-bit: same RNG draws, same participants,
        // same order — the generator's draw stream depends on it.
        let p = pool(11);
        for (day, count, seed) in
            [(0u32, 1usize, 21u64), (3, 17, 22), (10, 200, 23), (40, 1, 24), (7, 0, 25)]
        {
            let mut rng = StdRng::seed_from_u64(seed);
            let fast = p.participants(day, count, &mut rng);
            let after_fast: u64 = rng.gen();

            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = p.active_window(day);
            let dense = if count >= w.len() {
                w
            } else {
                for i in 0..count {
                    let j = rng.gen_range(i..w.len());
                    w.swap(i, j);
                }
                w.truncate(count);
                w
            };
            let after_dense: u64 = rng.gen();

            assert_eq!(fast, dense, "day {day} count {count}");
            assert_eq!(after_fast, after_dense, "RNG stream diverged");
        }
    }

    #[test]
    fn different_slots_prefer_different_ases() {
        let (g, allocs) = setup();
        let cat = FamilyCatalog::small();
        let profile = cat.profile(crate::family::FamilyId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let p0 = BotPool::recruit(&g, &allocs, profile, 0, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let p5 = BotPool::recruit(&g, &allocs, profile, 5, &mut rng).unwrap();
        let top = |p: &BotPool| {
            let mut hist: BTreeMap<Asn, usize> = BTreeMap::new();
            for b in p.bots() {
                *hist.entry(b.asn).or_insert(0) += 1;
            }
            hist.into_iter().max_by_key(|(_, c)| *c).map(|(a, _)| a)
        };
        // Not guaranteed for every seed/slot pair, but with slot offset 35
        // ranks apart the heads should differ for this fixture.
        assert_ne!(top(&p0), top(&p5));
    }
}
