//! The corpus container: chronological attack records plus the substrate
//! they were observed on.

use crate::attack::AttackRecord;
use crate::family::{FamilyCatalog, FamilyId};
use crate::targets::{TargetId, TargetPopulation};
use crate::{Result, TraceError};
use ddos_astopo::graph::AsGraph;
use ddos_astopo::ipmap::IpAsnMap;
use ddos_astopo::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A complete verified-attack corpus.
///
/// Holds the chronologically ordered attacks together with the synthetic
/// Internet they were generated on, the IP→ASN mapping, the target
/// population and the family catalog — everything the feature extractors
/// in `ddos-core` need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    attacks: Vec<AttackRecord>,
    catalog: FamilyCatalog,
    topology: AsGraph,
    ipmap: IpAsnMap,
    targets: TargetPopulation,
    days: u32,
    /// Memoized target-AS → attack-position index. Derived data: skipped
    /// by serde and `PartialEq`; the attack list is immutable after
    /// construction, so the index never goes stale.
    #[serde(skip)]
    by_target_asn: OnceLock<BTreeMap<Asn, Vec<u32>>>,
}

impl PartialEq for Corpus {
    fn eq(&self, other: &Self) -> bool {
        self.attacks == other.attacks
            && self.catalog == other.catalog
            && self.topology == other.topology
            && self.ipmap == other.ipmap
            && self.targets == other.targets
            && self.days == other.days
    }
}

impl Corpus {
    /// Assembles a corpus. Attacks must already be chronologically sorted.
    ///
    /// # Errors
    ///
    /// * [`TraceError::EmptyCorpus`] when no attacks are given.
    /// * [`TraceError::InvalidConfig`] when attacks are out of order.
    pub fn new(
        attacks: Vec<AttackRecord>,
        catalog: FamilyCatalog,
        topology: AsGraph,
        ipmap: IpAsnMap,
        targets: TargetPopulation,
        days: u32,
    ) -> Result<Self> {
        if attacks.is_empty() {
            return Err(TraceError::EmptyCorpus);
        }
        if attacks.windows(2).any(|w| w[0].start > w[1].start) {
            return Err(TraceError::InvalidConfig {
                detail: "attacks must be chronologically sorted".to_string(),
            });
        }
        Ok(Corpus {
            attacks,
            catalog,
            topology,
            ipmap,
            targets,
            days,
            by_target_asn: OnceLock::new(),
        })
    }

    /// All attacks, chronological.
    pub fn attacks(&self) -> &[AttackRecord] {
        &self.attacks
    }

    /// Number of attacks.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// Whether the corpus is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// The family catalog.
    pub fn catalog(&self) -> &FamilyCatalog {
        &self.catalog
    }

    /// The synthetic Internet.
    pub fn topology(&self) -> &AsGraph {
        &self.topology
    }

    /// The IP→ASN mapping.
    pub fn ip_map(&self) -> &IpAsnMap {
        &self.ipmap
    }

    /// The target population.
    pub fn targets(&self) -> &TargetPopulation {
        &self.targets
    }

    /// Length of the observation window in days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Chronological attacks of one family.
    pub fn family_attacks(&self, family: FamilyId) -> Vec<&AttackRecord> {
        self.attacks.iter().filter(|a| a.family == family).collect()
    }

    /// Chronological attacks on targets inside one AS (the spatial model's
    /// grouping: "all target-related variables characterize DDoS attacks in
    /// the same network region (AS-level)", §V). Served from a memoized
    /// per-AS index built on first use, so repeated queries stop
    /// rescanning the whole corpus.
    pub fn attacks_on_asn(&self, asn: Asn) -> Vec<&AttackRecord> {
        let index = self.by_target_asn.get_or_init(|| {
            let mut index: BTreeMap<Asn, Vec<u32>> = BTreeMap::new();
            for (i, a) in self.attacks.iter().enumerate() {
                index.entry(a.target_asn).or_default().push(i as u32);
            }
            index
        });
        index
            .get(&asn)
            .map(|ix| ix.iter().map(|i| &self.attacks[*i as usize]).collect())
            .unwrap_or_default()
    }

    /// Chronological attacks on one target.
    pub fn attacks_on_target(&self, target: TargetId) -> Vec<&AttackRecord> {
        self.attacks.iter().filter(|a| a.target == target).collect()
    }

    /// Distinct target ASes observed, ascending.
    pub fn target_asns(&self) -> Vec<Asn> {
        let set: std::collections::BTreeSet<Asn> =
            self.attacks.iter().map(|a| a.target_asn).collect();
        set.into_iter().collect()
    }

    /// Chronological train/test split at `fraction` (the paper uses 80/20:
    /// 40,563 training and 10,141 testing attacks). Test data strictly
    /// follows training data in time, so it "has no effect on training".
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadSplit`] unless `0 < fraction < 1`.
    pub fn split(&self, fraction: f64) -> Result<(&[AttackRecord], &[AttackRecord])> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(TraceError::BadSplit(fraction));
        }
        let cut = ((self.attacks.len() as f64) * fraction).round() as usize;
        let cut = cut.clamp(1, self.attacks.len() - 1);
        Ok(self.attacks.split_at(cut))
    }

    /// Daily attack counts for a family over the whole window (inactive
    /// days count zero).
    pub fn daily_counts(&self, family: FamilyId) -> Vec<f64> {
        let mut counts = vec![0.0; self.days as usize + 3];
        for a in self.attacks.iter().filter(|a| a.family == family) {
            let d = a.start.day() as usize;
            if d < counts.len() {
                counts[d] += 1.0;
            }
        }
        counts
    }

    /// Daily counts restricted to *active* days (what Table I averages
    /// over).
    pub fn active_daily_counts(&self, family: FamilyId) -> Vec<f64> {
        self.daily_counts(family).into_iter().filter(|c| *c > 0.0).collect()
    }

    /// Inter-launch times in seconds between consecutive attacks of one
    /// family (the paper's waiting-time component of turnaround time).
    pub fn inter_launch_times(&self, family: FamilyId) -> Vec<f64> {
        let fam: Vec<&AttackRecord> = self.family_attacks(family);
        fam.windows(2).map(|w| w[1].start.abs_diff(w[0].start) as f64).collect()
    }

    /// Validates every structural invariant of the corpus and returns the
    /// first violation found: chronological order, dense ids, record
    /// consistency (snapshots/magnitude/duration), targets resolvable,
    /// bots resolvable through the IP map. Generated corpora always pass;
    /// this is the integrity gate for corpora loaded from external
    /// sources.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        let bad = |detail: String| Err(TraceError::InvalidConfig { detail });
        for (i, a) in self.attacks.iter().enumerate() {
            if a.id.0 != i as u64 {
                return bad(format!("attack at index {i} has id {}", a.id));
            }
            if i > 0 && self.attacks[i - 1].start > a.start {
                return bad(format!("attack {} out of chronological order", a.id));
            }
            if !a.is_consistent() {
                return bad(format!("attack {} has inconsistent snapshots", a.id));
            }
            if self.targets.target(a.target).is_err() {
                return bad(format!("attack {} references unknown {}", a.id, a.target));
            }
            if !self.topology.contains(a.target_asn) {
                return bad(format!("attack {} targets unknown {}", a.id, a.target_asn));
            }
            for b in a.bots() {
                if self.ipmap.lookup(b.ip) != Some(b.asn) {
                    return bad(format!(
                        "attack {}: bot {} does not resolve to {}",
                        a.id,
                        ddos_astopo::ipmap::format_ipv4(b.ip),
                        b.asn
                    ));
                }
            }
            if self.catalog.profile(a.family).is_err() {
                return bad(format!("attack {} references unknown {}", a.id, a.family));
            }
        }
        Ok(())
    }

    /// Per-AS attack counts over all targets, descending by count.
    pub fn hottest_target_asns(&self, n: usize) -> Vec<(Asn, usize)> {
        let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
        for a in &self.attacks {
            *counts.entry(a.target_asn).or_insert(0) += 1;
        }
        let mut v: Vec<(Asn, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), 71).generate().unwrap()
    }

    #[test]
    fn split_is_chronological_80_20() {
        let c = corpus();
        let (train, test) = c.split(0.8).unwrap();
        assert_eq!(train.len() + test.len(), c.len());
        let ratio = train.len() as f64 / c.len() as f64;
        assert!((ratio - 0.8).abs() < 0.01);
        assert!(train.last().unwrap().start <= test.first().unwrap().start);
    }

    #[test]
    fn split_rejects_bad_fractions() {
        let c = corpus();
        assert!(matches!(c.split(0.0), Err(TraceError::BadSplit(_))));
        assert!(matches!(c.split(1.0), Err(TraceError::BadSplit(_))));
        assert!(matches!(c.split(-0.3), Err(TraceError::BadSplit(_))));
    }

    #[test]
    fn family_views_partition_the_corpus() {
        let c = corpus();
        let total: usize = c.catalog().iter().map(|(id, _)| c.family_attacks(id).len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn asn_views_partition_the_corpus() {
        let c = corpus();
        let total: usize = c.target_asns().iter().map(|a| c.attacks_on_asn(*a).len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn daily_counts_sum_to_family_total() {
        let c = corpus();
        for (id, _) in c.catalog().iter() {
            let total: f64 = c.daily_counts(id).iter().sum();
            assert_eq!(total as usize, c.family_attacks(id).len());
            let active: f64 = c.active_daily_counts(id).iter().sum();
            assert_eq!(active, total);
        }
    }

    #[test]
    fn inter_launch_times_are_nonnegative() {
        let c = corpus();
        for (id, _) in c.catalog().iter() {
            assert!(c.inter_launch_times(id).iter().all(|g| *g >= 0.0));
        }
    }

    #[test]
    fn hottest_asns_sorted_desc() {
        let c = corpus();
        let hot = c.hottest_target_asns(5);
        assert!(!hot.is_empty());
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_corpus_rejected() {
        let c = corpus();
        let err = Corpus::new(
            Vec::new(),
            c.catalog().clone(),
            c.topology().clone(),
            c.ip_map().clone(),
            c.targets().clone(),
            10,
        );
        assert!(matches!(err, Err(TraceError::EmptyCorpus)));
    }

    #[test]
    fn unsorted_attacks_rejected() {
        let c = corpus();
        let mut attacks: Vec<AttackRecord> = c.attacks().to_vec();
        attacks.swap(0, c.len() - 1);
        let err = Corpus::new(
            attacks,
            c.catalog().clone(),
            c.topology().clone(),
            c.ip_map().clone(),
            c.targets().clone(),
            c.days(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn generated_corpus_validates() {
        let c = corpus();
        c.validate().unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let c = corpus();
        // Corrupt one record's snapshots.
        let mut attacks: Vec<AttackRecord> = c.attacks().to_vec();
        attacks[3].hourly_bot_counts.clear();
        let broken = Corpus::new(
            attacks,
            c.catalog().clone(),
            c.topology().clone(),
            c.ip_map().clone(),
            c.targets().clone(),
            c.days(),
        )
        .unwrap();
        let err = broken.validate().unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");

        // Corrupt a bot's ASN.
        let mut attacks: Vec<AttackRecord> = c.attacks().to_vec();
        attacks[0].bots_mut()[0].asn = ddos_astopo::Asn(999_999);
        let broken = Corpus::new(
            attacks,
            c.catalog().clone(),
            c.topology().clone(),
            c.ip_map().clone(),
            c.targets().clone(),
            c.days(),
        )
        .unwrap();
        assert!(broken.validate().is_err());
    }

    #[test]
    fn attacks_on_target_are_chronological() {
        let c = corpus();
        let target = c.attacks()[0].target;
        let on_target = c.attacks_on_target(target);
        for w in on_target.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }
}
