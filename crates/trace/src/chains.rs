//! Multistage-attack chain reconstruction (§III-A2).
//!
//! The paper augments the multistage definition of \[22\]: "attacks that
//! happened consecutively within a timeframe of 30 seconds to 24 hours …
//! towards the same target are considered as multistage DDoS attacks", and
//! derives that band "from analyzing the CDF of inter-launching time of
//! any two consecutive DDoS attacks". This module rebuilds both artifacts
//! from a corpus: the inter-launch CDF the band was read off, and the
//! chains themselves (maximal runs of same-target attacks whose
//! consecutive gaps stay inside the band).

use crate::attack::AttackId;
use crate::dataset::Corpus;
use crate::targets::TargetId;
use crate::time::DAY;
use crate::{Result, TraceError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The §III-A2 band: consecutive same-target attacks 30 s – 24 h apart.
pub const MULTISTAGE_MIN_GAP_SECS: u64 = 30;
/// Upper edge of the multistage band (exclusive).
pub const MULTISTAGE_MAX_GAP_SECS: u64 = DAY;

/// One reconstructed multistage chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    /// The common victim.
    pub target: TargetId,
    /// Attack ids in launch order (length ≥ 2).
    pub attacks: Vec<AttackId>,
    /// Gaps between consecutive stages, seconds (length = attacks − 1).
    pub gaps_secs: Vec<u64>,
}

impl Chain {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// Chains always have at least two stages.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Total span from first to last launch, seconds.
    pub fn span_secs(&self) -> u64 {
        self.gaps_secs.iter().sum()
    }
}

/// Chain-level corpus statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStats {
    /// All reconstructed chains.
    pub chains: Vec<Chain>,
    /// Fraction of corpus attacks that belong to some chain.
    pub chained_fraction: f64,
    /// Mean chain length (stages).
    pub mean_length: f64,
    /// Longest chain observed.
    pub max_length: usize,
}

/// Reconstructs multistage chains: per target, chronological attacks are
/// linked while consecutive gaps stay within the 30 s–24 h band; maximal
/// runs of length ≥ 2 become [`Chain`]s.
///
/// # Errors
///
/// Returns [`TraceError::EmptyCorpus`] for an empty corpus (cannot happen
/// for constructed corpora).
pub fn reconstruct_chains(corpus: &Corpus) -> Result<ChainStats> {
    if corpus.is_empty() {
        return Err(TraceError::EmptyCorpus);
    }
    let mut per_target: BTreeMap<TargetId, Vec<&crate::attack::AttackRecord>> = BTreeMap::new();
    for a in corpus.attacks() {
        per_target.entry(a.target).or_default().push(a);
    }

    let mut chains = Vec::new();
    let mut chained_attacks = 0usize;
    for (target, attacks) in per_target {
        let mut run: Vec<&crate::attack::AttackRecord> = Vec::new();
        let flush = |run: &mut Vec<&crate::attack::AttackRecord>, chains: &mut Vec<Chain>| {
            if run.len() >= 2 {
                chains.push(Chain {
                    target,
                    attacks: run.iter().map(|a| a.id).collect(),
                    gaps_secs: run.windows(2).map(|w| w[1].start.abs_diff(w[0].start)).collect(),
                });
            }
            run.clear();
        };
        for a in attacks {
            match run.last() {
                Some(prev) => {
                    let gap = a.start.abs_diff(prev.start);
                    if (MULTISTAGE_MIN_GAP_SECS..MULTISTAGE_MAX_GAP_SECS).contains(&gap) {
                        run.push(a);
                    } else {
                        flush(&mut run, &mut chains);
                        run.push(a);
                    }
                }
                None => run.push(a),
            }
        }
        flush(&mut run, &mut chains);
    }

    for c in &chains {
        chained_attacks += c.len();
    }
    let mean_length =
        if chains.is_empty() { 0.0 } else { chained_attacks as f64 / chains.len() as f64 };
    Ok(ChainStats {
        max_length: chains.iter().map(Chain::len).max().unwrap_or(0),
        chained_fraction: chained_attacks as f64 / corpus.len() as f64,
        mean_length,
        chains,
    })
}

/// The empirical CDF of inter-launch times between consecutive attacks
/// (corpus-wide, in launch order) — the distribution the paper read the
/// 30 s–24 h band off. Returns `(sorted gaps in seconds, cumulative
/// fraction)` pairs decimated to at most `max_points`.
///
/// # Errors
///
/// Returns [`TraceError::EmptyCorpus`] when fewer than two attacks exist.
pub fn inter_launch_cdf(corpus: &Corpus, max_points: usize) -> Result<Vec<(f64, f64)>> {
    if corpus.len() < 2 {
        return Err(TraceError::EmptyCorpus);
    }
    let mut gaps: Vec<f64> =
        corpus.attacks().windows(2).map(|w| w[1].start.abs_diff(w[0].start) as f64).collect();
    gaps.sort_by(f64::total_cmp);
    let n = gaps.len();
    let step = n.div_ceil(max_points.max(1)).max(1);
    let mut out = Vec::new();
    for (i, g) in gaps.iter().enumerate() {
        if i % step == 0 || i == n - 1 {
            out.push((*g, (i + 1) as f64 / n as f64));
        }
    }
    Ok(out)
}

/// Fraction of consecutive same-target gaps that fall inside the
/// multistage band — the coverage argument the paper makes for choosing
/// it ("covers most consecutive DDoS attacks without introducing much
/// noise").
pub fn band_coverage(corpus: &Corpus) -> f64 {
    let mut per_target: BTreeMap<TargetId, Vec<u64>> = BTreeMap::new();
    let mut last_seen: BTreeMap<TargetId, crate::time::Timestamp> = BTreeMap::new();
    for a in corpus.attacks() {
        if let Some(prev) = last_seen.insert(a.target, a.start) {
            per_target.entry(a.target).or_default().push(a.start.abs_diff(prev));
        }
    }
    let all: Vec<u64> = per_target.into_values().flatten().collect();
    if all.is_empty() {
        return 0.0;
    }
    let inside = all
        .iter()
        .filter(|g| (MULTISTAGE_MIN_GAP_SECS..MULTISTAGE_MAX_GAP_SECS).contains(g))
        .count();
    inside as f64 / all.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, TraceGenerator};

    fn corpus() -> Corpus {
        TraceGenerator::new(CorpusConfig::small(), 161).generate().unwrap()
    }

    #[test]
    fn chains_have_valid_structure() {
        let c = corpus();
        let stats = reconstruct_chains(&c).unwrap();
        assert!(!stats.chains.is_empty(), "no chains found");
        for chain in &stats.chains {
            assert!(chain.len() >= 2);
            assert!(!chain.is_empty());
            assert_eq!(chain.gaps_secs.len(), chain.len() - 1);
            for g in &chain.gaps_secs {
                assert!(
                    (MULTISTAGE_MIN_GAP_SECS..MULTISTAGE_MAX_GAP_SECS).contains(g),
                    "gap {g} outside the band"
                );
            }
            assert_eq!(chain.span_secs(), chain.gaps_secs.iter().sum::<u64>());
        }
    }

    #[test]
    fn chained_fraction_reflects_multistage_generation() {
        let c = corpus();
        let stats = reconstruct_chains(&c).unwrap();
        // The small catalog generates 40-45% multistage follow-ups, so a
        // substantial fraction of attacks must sit in chains.
        assert!(stats.chained_fraction > 0.3, "chained fraction {}", stats.chained_fraction);
        assert!(stats.mean_length >= 2.0);
        assert!(stats.max_length >= 3);
    }

    #[test]
    fn generator_multistage_flags_live_in_chains() {
        // Every attack the generator flagged as multistage must be found
        // inside some reconstructed chain.
        let c = corpus();
        let stats = reconstruct_chains(&c).unwrap();
        let chained: std::collections::BTreeSet<AttackId> =
            stats.chains.iter().flat_map(|ch| ch.attacks.iter().copied()).collect();
        let mut missing = 0;
        let mut flagged = 0;
        for a in c.attacks() {
            if a.multistage {
                flagged += 1;
                if !chained.contains(&a.id) {
                    missing += 1;
                }
            }
        }
        assert!(flagged > 0);
        // A flagged attack can fall out of a chain only when its
        // predecessor's gap collided with the band edges.
        assert!(
            (missing as f64) < (flagged as f64) * 0.05,
            "{missing}/{flagged} multistage attacks missing from chains"
        );
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let c = corpus();
        let cdf = inter_launch_cdf(&c, 100).unwrap();
        assert!(cdf.len() <= 101);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "gaps not sorted");
            assert!(w[0].1 <= w[1].1, "CDF not monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn band_covers_most_same_target_gaps() {
        let c = corpus();
        let coverage = band_coverage(&c);
        // "This range covers most consecutive DDoS attacks."
        assert!(coverage > 0.5, "band coverage {coverage}");
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(MULTISTAGE_MIN_GAP_SECS, 30);
        assert_eq!(MULTISTAGE_MAX_GAP_SECS, 86_400);
    }

    #[test]
    fn cdf_survives_degenerate_all_simultaneous_corpus() {
        // Degenerate corpus: every attack launches at the same instant,
        // so every inter-launch gap is exactly 0. The old comparator
        // (`partial_cmp(..).expect("finite gaps")`) was one NaN away from
        // a panic on such edge-case inputs; `total_cmp` never is.
        let c = corpus();
        let t0 = c.attacks()[0].start;
        let frozen: Vec<_> = c
            .attacks()
            .iter()
            .take(3)
            .cloned()
            .map(|mut a| {
                a.start = t0;
                a
            })
            .collect();
        let degenerate = Corpus::new(
            frozen,
            c.catalog().clone(),
            c.topology().clone(),
            c.ip_map().clone(),
            c.targets().clone(),
            c.days(),
        )
        .unwrap();
        let cdf = inter_launch_cdf(&degenerate, 10).unwrap();
        assert_eq!(cdf.last().unwrap().0, 0.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
