//! Synthetic verified-DDoS-attack trace substrate.
//!
//! The ICDCS 2017 paper is built on a proprietary corpus: 50,704 *verified*
//! DDoS attacks observed over seven months (Aug 2012 – Mar 2013) across 10
//! active botnet families, with hourly snapshots of participating bots.
//! That corpus cannot be redistributed, so this crate regenerates a
//! statistically faithful stand-in:
//!
//! * per-family activity calibrated to **every number in Table I** (average
//!   attacks/day, active-day counts, coefficient of variation) via a
//!   doubly-stochastic arrival process (AR(1) log-normal daily rates over a
//!   Poisson layer) — see [`arrival`];
//! * the 30 s–24 h **multistage inter-launch band** of §III-A2;
//! * **diurnal launch cycles** (hour-of-day preferences per family);
//! * per-family **bot pools with churn and AS-geolocation affinity**,
//!   grounded in the [`ddos_astopo`] synthetic Internet so the AS-level
//!   source-distribution feature (Eq. 3–4) is computable end to end;
//! * per-target **affinity and duration persistence**, giving the spatial
//!   and spatiotemporal models the signal they were designed to detect.
//!
//! The trace's *shape* — who is most active, how bursty each family is,
//! where bots sit, how attacks cluster on targets — mirrors what the paper
//! reports, which is what the models consume; absolute numbers are not
//! claimed to match the original measurement.
//!
//! # Quickstart
//!
//! ```
//! use ddos_trace::{CorpusConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), ddos_trace::TraceError> {
//! let corpus = TraceGenerator::new(CorpusConfig::small(), 42).generate()?;
//! assert!(corpus.attacks().len() > 100);
//! let (train, test) = corpus.split(0.8)?;
//! assert!(train.len() > test.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod attack;
pub mod bots;
pub mod chains;
pub mod columnar;
pub mod dataset;
pub mod export;
pub mod family;
pub mod generator;
pub mod reports;
pub mod scenario;
pub mod stats;
pub mod stream;
pub mod targets;
pub mod time;

mod error;

pub use attack::{AttackId, AttackRecord, AttackVector, BotObservation};
pub use columnar::{ColumnarReader, ColumnarWriter};
pub use dataset::Corpus;
pub use error::TraceError;
pub use family::{FamilyCatalog, FamilyId, FamilyProfile};
pub use generator::{CorpusConfig, TraceGenerator};
pub use scenario::{RegimeParams, RegimeSchedule, ScenarioPolicy};
pub use stream::{CorpusStream, StreamOptions};
pub use targets::{TargetId, TargetPopulation};
pub use time::Timestamp;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TraceError>;
