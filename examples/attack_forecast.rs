//! Per-target attack forecasting with the spatiotemporal model (§VI).
//!
//! A cloud mitigation provider wants to tell each customer *when* the next
//! attack will land (day and hour), *how big* it will be and *how long* it
//! will last, from only 10 same-network and 10 recent attack observations.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example attack_forecast
//! ```

use ddos_adversary::model::pipeline::{Pipeline, PipelineConfig};
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 7).generate()?;
    println!("corpus: {} attacks / {} days", corpus.len(), corpus.days());

    let pipeline = Pipeline::new(PipelineConfig::fast(), 7);
    let report = pipeline.run_spatiotemporal(&corpus)?;

    println!("\nevaluated {} per-target prediction instances\n", report.predictions.len());
    println!("launch-hour RMSE (hours):");
    println!("  spatial model        {:>6.2}", report.spatial_hour_rmse);
    println!("  temporal model       {:>6.2}", report.temporal_hour_rmse);
    println!("  spatiotemporal tree  {:>6.2}", report.st_hour_rmse);
    println!("launch-day RMSE (days):");
    println!("  spatial model        {:>6.2}", report.spatial_day_rmse);
    println!("  spatiotemporal tree  {:>6.2}", report.st_day_rmse);

    println!("\nsample forecasts (first 8 test instances):");
    println!(
        "{:>6} {:>6} | {:>6} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
        "hour*", "hour", "day*", "day", "bots*", "bots", "dur*", "dur"
    );
    for p in report.predictions.iter().take(8) {
        let fc = p.predicted_attack();
        println!(
            "{:>6} {:>6.0} | {:>6} {:>6.0} | {:>9.0} {:>9.0} | {:>8.0}s {:>8.0}s",
            fc.timestamp.hour,
            p.truth_hour,
            fc.timestamp.day,
            p.truth_day,
            fc.magnitude,
            p.truth_magnitude,
            fc.duration_secs,
            p.truth_duration,
        );
    }
    println!("(* = predicted)");

    let improvement = report.spatial_hour_rmse / report.st_hour_rmse.max(1e-9);
    println!(
        "\nthe spatiotemporal model improves hour prediction {improvement:.1}x over the \
         spatial model alone — the Fig. 3/4 headline result"
    );
    Ok(())
}
