//! Family attribution from source-AS distributions (§VII-B).
//!
//! "ASN distributions also indicate the possible malware utilized by
//! botnets due to the location affinity property of botnet families."
//! A SOC sees an unattributed attack; which botnet family launched it
//! decides which AV signatures to push and which ISPs to call.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example attack_attribution
//! ```

use ddos_adversary::model::attribution::FamilyAttributor;
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 17).generate()?;
    let (train, test) = corpus.split(0.8)?;
    println!(
        "learning AS-affinity profiles for {} families from {} labeled attacks",
        corpus.catalog().len(),
        train.len()
    );

    let attributor = FamilyAttributor::fit(train)?;
    for profile in attributor.profiles() {
        let name = &corpus.catalog().profile(profile.family)?.name;
        let top: Vec<String> = {
            let mut shares: Vec<_> = profile.shares.iter().collect();
            shares.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
            shares.iter().take(3).map(|(a, s)| format!("{a}:{:.0}%", **s * 100.0)).collect()
        };
        println!("  {name:<12} top source ASes: {}", top.join("  "));
    }

    // Attribute every test attack and measure accuracy.
    let accuracy = attributor.accuracy(test)?;
    println!(
        "\nattribution accuracy over {} unlabeled test attacks: {:.1}%",
        test.len(),
        accuracy * 100.0
    );

    // Show one verdict in detail.
    let sample = &test[test.len() / 2];
    let verdict = attributor.attribute(sample)?;
    let truth = &corpus.catalog().profile(sample.family)?.name;
    println!("\nsample verdict for {} (truth: {truth}):", sample.id);
    for (family, distance) in &verdict.ranking {
        println!(
            "  {:<12} total-variation distance {:.3}",
            corpus.catalog().profile(*family)?.name,
            distance
        );
    }
    println!("confidence margin: {:.3}", verdict.margin());
    Ok(())
}
