//! Quickstart: generate a verified-attack corpus, reproduce the Table I
//! activity summary, fit the temporal model and predict upcoming attack
//! magnitudes.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ddos_adversary::model::features::FeatureExtractor;
use ddos_adversary::model::pipeline::{Pipeline, PipelineConfig};
use ddos_adversary::model::temporal::{TemporalConfig, TemporalModel};
use ddos_adversary::trace::stats::ActivityTable;
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a corpus. `small()` keeps this example fast; swap in
    //    `CorpusConfig::standard()` for the paper-scale 50k-attack corpus.
    let corpus = TraceGenerator::new(CorpusConfig::small(), 42).generate()?;
    println!(
        "generated {} verified attacks over {} days across {} botnet families\n",
        corpus.len(),
        corpus.days(),
        corpus.catalog().len()
    );

    // 2. Reproduce Table I: per-family activity levels.
    let table = ActivityTable::compute(&corpus)?;
    println!("Table I — activity level of bots:\n{table}");

    // 3. Fit the §IV temporal model on the most active family and predict
    //    the magnitude of each held-out attack one step ahead.
    let family = corpus.catalog().most_active(1)[0];
    let name = &corpus.catalog().profile(family)?.name;
    let attacks = corpus.family_attacks(family);
    let cut = (attacks.len() as f64 * 0.8) as usize;
    let (train, test) = (attacks[..cut].to_vec(), attacks[cut..].to_vec());

    let fx = FeatureExtractor::new(&corpus);
    let model = TemporalModel::fit(&fx, family, &train, &TemporalConfig::default())?;
    println!("fitted {} for {name}'s magnitude series", model.magnitude_model().order());

    let predictions = model.predict_magnitudes(&test)?;
    let truth = FeatureExtractor::magnitude_series(&test);
    println!("\nfirst 10 one-step magnitude predictions ({name}):");
    println!("{:>10} {:>10} {:>8}", "predicted", "actual", "error");
    for (p, t) in predictions.iter().zip(&truth).take(10) {
        println!("{p:>10.1} {t:>10.1} {:>8.1}", p - t);
    }

    // 4. Or run the whole Fig. 1 experiment in one call.
    let report = Pipeline::new(PipelineConfig::fast(), 42).run_temporal(&corpus)?;
    println!("\nFig. 1 summary (rolling one-step magnitude prediction):");
    for r in &report.per_family {
        println!(
            "  {:<12} RMSE {:>7.2} over {} test attacks",
            r.name,
            r.magnitudes.rmse,
            r.magnitudes.len()
        );
    }
    Ok(())
}
