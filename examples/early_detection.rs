//! Entropy-based early attack detection (§V-B).
//!
//! The paper notes that accurate source-AS predictions "could further
//! facilitate effective defense mechanisms via early DDoS attack
//! detections, which could be achieved by evaluating the entropy of AS
//! distributions over all concurrent connections." This example calibrates
//! the sliding-window entropy detector on benign traffic, then replays a
//! benign stream with a real corpus attack spliced in and measures the
//! detection latency.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example early_detection
//! ```

use ddos_adversary::astopo::{Asn, Tier};
use ddos_adversary::model::detection::{DetectorConfig, EntropyDetector};
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 23).generate()?;
    let mut rng = StdRng::seed_from_u64(23);

    // Benign traffic: connections spread across every stub network.
    let stubs: Vec<Asn> = corpus.topology().tier_members(Tier::Stub);
    let benign = |rng: &mut StdRng, n: usize| -> Vec<Asn> {
        (0..n).map(|_| stubs[rng.gen_range(0..stubs.len())]).collect()
    };

    let calibration = benign(&mut rng, 6_000);
    let config = DetectorConfig::default();
    let mut detector = EntropyDetector::calibrate(&calibration, config)?;
    println!(
        "calibrated on {} benign connections: benign entropy {:.2} bits, alarm below {:.2} bits",
        calibration.len(),
        detector.benign_mean(),
        detector.threshold()
    );

    // Splice a real attack's bot connections into live benign traffic.
    let attack = corpus.attacks().iter().max_by_key(|a| a.magnitude()).expect("corpus nonempty");
    println!(
        "\nreplaying {}: {} bots from {} ASes, interleaved 3:1 with benign traffic",
        attack.id,
        attack.magnitude(),
        attack.source_asns().len()
    );

    let mut stream = benign(&mut rng, 2_000);
    let onset = stream.len();
    // During the attack, 75% of new connections are bots (repeating the
    // bot set as each bot opens many connections).
    for i in 0..4_000usize {
        if i % 4 == 0 {
            stream.push(stubs[rng.gen_range(0..stubs.len())]);
        } else {
            let bot = &attack.bots()[rng.gen_range(0..attack.bots().len())];
            stream.push(bot.asn);
        }
    }

    let alarms = detector.scan(&stream);
    match alarms.iter().find(|&&i| i >= onset) {
        Some(&first) => {
            println!(
                "first alarm {} connections after attack onset (window {})",
                first - onset,
                config.window
            );
            let false_alarms = alarms.iter().filter(|&&i| i < onset).count();
            println!("false alarms before onset: {false_alarms}");
        }
        None => println!("attack was never detected — try a larger window"),
    }
    Ok(())
}
