//! Prediction-guided capacity provisioning (§VII-B).
//!
//! A mitigation provider must decide, for each of the next attacks, how
//! much scrubbing capacity to stand up. Too little means unabsorbed attack
//! traffic; too much burns money. This example sizes capacity to the
//! temporal model's 95% upper prediction band and compares against a
//! static plan and a last-observed (reactive) plan, with outages costing
//! 10× idle capacity.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use ddos_adversary::model::features::FeatureExtractor;
use ddos_adversary::model::provisioning::{CapacityPlanner, Strategy};
use ddos_adversary::model::temporal::{TemporalConfig, TemporalModel};
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 29).generate()?;
    let fx = FeatureExtractor::new(&corpus);
    let family = corpus.catalog().most_active(1)[0];
    let name = &corpus.catalog().profile(family)?.name;

    let attacks = corpus.family_attacks(family);
    let horizon = 16usize;
    let cut = attacks.len() - horizon;
    let (train, test) = (attacks[..cut].to_vec(), attacks[cut..].to_vec());

    let model = TemporalModel::fit(&fx, family, &train, &TemporalConfig::default())?;
    let bands = model.forecast_magnitude_interval(horizon, 1.96)?;
    let actuals = FeatureExtractor::magnitude_series(&test);
    let last = train.last().expect("nonempty train").magnitude() as f64;
    let mean_hist: f64 =
        FeatureExtractor::magnitude_series(&train).iter().sum::<f64>() / train.len() as f64;

    println!("provisioning scrubbing capacity for {name}'s next {horizon} attacks\n");
    println!("95% interval forecast (first 5 periods):");
    for (i, (mean, lo, hi)) in bands.iter().take(5).enumerate() {
        println!(
            "  t+{:<2} mean {mean:>6.1}  band [{lo:>6.1}, {hi:>6.1}]  actual {:>5.0}",
            i + 1,
            actuals[i]
        );
    }

    let planner = CapacityPlanner::new();
    let strategies = [
        ("prediction upper band", Strategy::PredictedUpperBand),
        ("static (history mean)", Strategy::Static { capacity: mean_hist }),
        ("last observed", Strategy::LastObserved),
    ];
    println!(
        "\n{:<24} {:>9} {:>9} {:>9} {:>10}",
        "strategy", "shortfall", "excess", "coverage", "cost(10:1)"
    );
    for (label, strategy) in strategies {
        let report = planner.score(strategy, &bands, &actuals, last)?;
        println!(
            "{label:<24} {:>9.0} {:>9.0} {:>8.0}% {:>10.0}",
            report.total_shortfall,
            report.total_excess,
            report.coverage * 100.0,
            report.cost(10.0, 1.0)
        );
    }
    println!(
        "\nthe upper-band plan buys full coverage with bounded idle capacity — the\n\
         paper's \"better utilization of limited defense resources\""
    );
    Ok(())
}
