//! The full serving story: fit once, persist a versioned artifact, then
//! run a long-lived micro-batching forecast service over it (DESIGN.md
//! §12).
//!
//! A mitigation provider fits the spatiotemporal model offline, ships
//! the artifact to serving hosts, and answers per-customer forecast
//! queries from many threads — with bounded admission and bit-identical
//! results at any batching or concurrency.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example forecast_service
//! ```

use ddos_adversary::model::artifact::ModelArtifact;
use ddos_adversary::model::pipeline::{Pipeline, PipelineConfig};
use ddos_adversary::model::spatiotemporal::{InstanceFeatures, SpatioTemporalModel};
use ddos_adversary::serve::{
    BatchPolicy, DirModelStore, ForecastRequest, ForecastService, ModelStore, ServeConfig,
    ServeError,
};
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Fit once, persist the artifact ─────────────────────────────────
    let corpus = TraceGenerator::new(CorpusConfig::small(), 7).generate()?;
    let pipeline = Pipeline::new(PipelineConfig::fast(), 7);
    let model = pipeline.fit_spatiotemporal(&corpus)?;

    let dir = std::env::temp_dir().join(format!("ddos-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    model.save_artifact(&dir.join("st.mdl"))?;
    println!("fitted spatiotemporal model, artifact saved under {}", dir.display());

    // ── Serve many times, from a separate decode path ──────────────────
    let store: Arc<dyn ModelStore> = Arc::new(DirModelStore::open(&dir));
    println!("store keys: {:?} (decode-cached on first load)", store.keys());
    let handle = ForecastService::start(
        &store,
        "st",
        ServeConfig {
            batch: BatchPolicy { max_batch: 32, max_delay: Duration::from_millis(1) },
            ..ServeConfig::default()
        },
    )?;

    // Real query rows: the model's own training design, replayed as
    // typed features.
    let (train, _) = corpus.split(0.8)?;
    let (rows, _) =
        SpatioTemporalModel::training_design(train, &PipelineConfig::fast().spatiotemporal, 7)?;
    let features: Vec<InstanceFeatures> =
        rows.iter().filter_map(|r| InstanceFeatures::from_row(r)).collect();

    // Four producer threads share the service through cloned clients.
    let n_producers = 4;
    std::thread::scope(|scope| {
        for p in 0..n_producers {
            let client = handle.client();
            let features = &features;
            scope.spawn(move || {
                let tickets: Vec<_> = features
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % n_producers == p)
                    .map(|(i, f)| {
                        let req = ForecastRequest {
                            source: p as u64,
                            target: ddos_adversary::astopo::Asn(i as u32),
                            features: *f,
                        };
                        (i, client.submit(req).expect("admission"))
                    })
                    .collect();
                for (i, ticket) in tickets.into_iter().take(2) {
                    let r = ticket.wait().expect("forecast");
                    println!(
                        "  producer {p}: instance {i:>3} → hour {:>4.1}, day {:>4.1}, \
                         {:>6.0} bots, {:>6.0}s (batch of {})",
                        r.forecast.hour,
                        r.forecast.day,
                        r.forecast.magnitude,
                        r.forecast.duration_secs,
                        r.batch_len,
                    );
                }
            });
        }
    });

    let stats = handle.shutdown()?;
    println!(
        "\nserved {} forecasts in {} micro-batches (largest flush {})",
        stats.served, stats.batches, stats.max_batch_len
    );

    // Admission is typed: a shut-down service refuses cleanly.
    let client_after = {
        let handle = ForecastService::start(&store, "st", ServeConfig::default())?;
        let client = handle.client();
        handle.shutdown()?;
        client
    };
    let refused = client_after.submit(ForecastRequest {
        source: 0,
        target: ddos_adversary::astopo::Asn(0),
        features: features[0],
    });
    assert!(matches!(refused, Err(ServeError::ShuttingDown)));
    println!("post-shutdown submission refused with: {}", refused.unwrap_err());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
