//! The Fig. 5(a) use case: AS-based attack filtering at an SDN ingress.
//!
//! The source-distribution model (§V) predicts which ASes the next
//! attack's bots will come from; the control plane installs classification
//! rules for the top predicted ASes so matching flows detour through
//! scrubbing. This example measures how much of each real test attack the
//! predicted rules catch, against a random-rule baseline with the same
//! TCAM budget.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example defense_planning
//! ```

use ddos_adversary::model::spatial::{SourceDistributionModel, SpatialConfig};
use ddos_adversary::model::usecases::AsFilteringSimulator;
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 11).generate()?;
    let family = corpus.catalog().most_active(1)[0];
    let name = &corpus.catalog().profile(family)?.name;
    let attacks = corpus.family_attacks(family);
    let cut = (attacks.len() as f64 * 0.8) as usize;
    let (train, test) = (attacks[..cut].to_vec(), attacks[cut..].to_vec());

    println!("{name}: {} training attacks, {} test attacks", train.len(), test.len());

    // Fit the per-AS share model and predict each test attack's source
    // distribution one step ahead.
    let model = SourceDistributionModel::fit(&train, &SpatialConfig::fast(), 11)?;
    let predictions = model.predict_distribution(&test)?;
    println!("tracking the family's top {} source ASes", model.asns().len());

    // Replay: install rules for the top-K predicted ASes per attack.
    const RULE_BUDGET: usize = 3;
    let sim = AsFilteringSimulator::new();
    let universe: Vec<_> = corpus.topology().asns().collect();
    let mut rng = StdRng::seed_from_u64(99);

    let mut predicted_cov = 0.0;
    let mut random_cov = 0.0;
    for (attack, dist) in test.iter().zip(&predictions) {
        let ranked: Vec<_> = model.asns().iter().copied().zip(dist.iter().copied()).collect();
        predicted_cov += sim.apply_predicted(&ranked, RULE_BUDGET, attack).coverage;
        random_cov += sim.apply_random(&universe, RULE_BUDGET, attack, &mut rng).coverage;
    }
    predicted_cov /= test.len() as f64;
    random_cov /= test.len() as f64;

    println!("\nmean attack-traffic coverage with {RULE_BUDGET} filter rules:");
    println!("  prediction-driven rules  {:>5.1}%", predicted_cov * 100.0);
    println!("  random rules             {:>5.1}%", random_cov * 100.0);
    println!(
        "\npredicted source distributions let the same TCAM budget scrub {:.0}x more \
         attack traffic",
        predicted_cov / random_cov.max(1e-6)
    );
    Ok(())
}
