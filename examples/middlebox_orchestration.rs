//! The Fig. 5(b) use case: prediction-driven middlebox reordering.
//!
//! Normally traffic passes the load balancer before the firewall (best
//! throughput); when an attack is expected the order flips so packets are
//! scrubbed first. Flipping takes time and interrupts service, so the
//! defender wants to flip *just* before the attack: this example compares
//! a flip scheduled by the spatiotemporal timestamp prediction against a
//! purely reactive flip triggered by attack detection.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example middlebox_orchestration
//! ```

use ddos_adversary::model::pipeline::{Pipeline, PipelineConfig};
use ddos_adversary::model::usecases::MiddleboxSimulator;
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 13).generate()?;
    let pipeline = Pipeline::new(PipelineConfig::fast(), 13);
    let report = pipeline.run_spatiotemporal(&corpus)?;
    println!("scheduling path flips for {} predicted attacks\n", report.predictions.len());

    let sim = MiddleboxSimulator::default();
    let mut pro_unprotected = 0.0;
    let mut rea_unprotected = 0.0;
    let mut pro_overcaution = 0.0;
    let mut episodes = 0usize;

    for p in &report.predictions {
        // Episode timeline in seconds within the attack day: the model
        // predicts the launch hour; the flip is scheduled before it.
        let predicted_start = p.st_hour * 3_600.0;
        let true_start = p.truth_hour * 3_600.0;
        let (pro, rea) = sim.compare(predicted_start, true_start, p.truth_duration)?;
        pro_unprotected += pro.unprotected_secs;
        rea_unprotected += rea.unprotected_secs;
        pro_overcaution += pro.overcautious_secs;
        episodes += 1;
    }
    let n = episodes as f64;
    println!("mean unscrubbed attack exposure per episode:");
    println!("  prediction-scheduled flip  {:>8.0} s", pro_unprotected / n);
    println!("  reactive flip (detection)  {:>8.0} s", rea_unprotected / n);
    println!(
        "\nmean early-flip overhead (firewall-first while idle): {:>6.0} s",
        pro_overcaution / n
    );

    if pro_unprotected < rea_unprotected {
        println!(
            "\nproactive scheduling cut unscrubbed exposure by {:.0}% — the Fig. 5(b) \
             motivation",
            (1.0 - pro_unprotected / rea_unprotected) * 100.0
        );
    } else {
        println!("\nprediction error was too large for proactive flips to pay off here");
    }
    Ok(())
}
