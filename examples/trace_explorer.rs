//! Corpus exploration: the measurement-study views of §II–III.
//!
//! Walks a generated corpus the way the paper's measurement sections do —
//! activity levels (Table I), the inter-launch CDF and multistage chains
//! (§III-A2), hourly monitoring reports (§II-C) — and exports the flat
//! CSV files a notebook would plot.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use ddos_adversary::trace::chains::{band_coverage, inter_launch_cdf, reconstruct_chains};
use ddos_adversary::trace::export::attacks_to_csv;
use ddos_adversary::trace::reports::hourly_reports;
use ddos_adversary::trace::stats::{mean_concurrent_attacks, ActivityTable};
use ddos_adversary::trace::{CorpusConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TraceGenerator::new(CorpusConfig::small(), 31).generate()?;
    println!(
        "corpus: {} verified attacks / {} days / {} families / {} target ASes",
        corpus.len(),
        corpus.days(),
        corpus.catalog().len(),
        corpus.target_asns().len()
    );
    println!("mean concurrent attacks per active hour: {:.1}\n", mean_concurrent_attacks(&corpus));

    // Table I view.
    println!("{}", ActivityTable::compute(&corpus)?);

    // §III-A2: inter-launch CDF and multistage chains.
    let cdf = inter_launch_cdf(&corpus, 6)?;
    println!("inter-launch time CDF (decimated):");
    for (gap, frac) in cdf {
        println!("  {:>9.0}s  {:>5.1}%", gap, frac * 100.0);
    }
    let chains = reconstruct_chains(&corpus)?;
    println!(
        "\nmultistage chains: {} chains, {:.0}% of attacks chained, mean length {:.1}, max {}",
        chains.chains.len(),
        chains.chained_fraction * 100.0,
        chains.mean_length,
        chains.max_length
    );
    println!(
        "the 30 s – 24 h band covers {:.0}% of consecutive same-target gaps",
        band_coverage(&corpus) * 100.0
    );

    // §II-C: hourly monitoring reports for the most active family.
    let family = corpus.catalog().most_active(1)[0];
    let name = &corpus.catalog().profile(family)?.name;
    let stream = hourly_reports(&corpus, family)?;
    println!("\nhourly reports for {name}: {} reports", stream.reports.len());
    println!("peak 24-hour active bots: {}", stream.peak_bots());
    let busiest = stream.reports.iter().max_by_key(|r| r.attacks_24h).expect("stream nonempty");
    println!(
        "busiest 24h window ends hour {}: {} attacks from {} bots in {} ASes",
        busiest.hour, busiest.attacks_24h, busiest.active_bots, busiest.active_asns
    );

    // Export for notebooks.
    let out = std::env::temp_dir().join("ddos_adversary_attacks.csv");
    std::fs::write(&out, attacks_to_csv(&corpus))?;
    println!("\nwrote the attack table to {}", out.display());
    Ok(())
}
