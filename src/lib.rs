//! Facade crate for the adversary-centric DDoS behavior-modeling workspace.
//!
//! Re-exports every member crate under one roof so downstream users (and the
//! runnable examples under `examples/`) can depend on a single package:
//!
//! * [`stats`] — time-series/regression substrate (OLS, ARIMA, metrics, …)
//! * [`astopo`] — AS-level Internet substrate (topology, routing, Gao
//!   relationship inference, IP→ASN mapping)
//! * [`trace`] — synthetic verified-DDoS-attack corpus generator
//! * [`neural`] — NAR neural-network substrate
//! * [`cart`] — CART regression-tree / model-tree substrate
//! * [`model`] — the paper's contribution: temporal, spatial and
//!   spatiotemporal attack models, baselines and evaluation
//! * [`serve`] — long-lived micro-batching forecast service over fitted
//!   model artifacts (admission control, rate accounting, deterministic
//!   sharded scoring)
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use ddos_adversary::trace::{CorpusConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CorpusConfig::small();
//! let corpus = TraceGenerator::new(config, 42).generate()?;
//! assert!(corpus.attacks().len() > 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use ddos_astopo as astopo;
pub use ddos_cart as cart;
pub use ddos_core as model;
pub use ddos_neural as neural;
pub use ddos_serve as serve;
pub use ddos_stats as stats;
pub use ddos_trace as trace;
